//! Scheduling-*quality* lints (`mipsx lint --timing`).
//!
//! The verifier proper ([`crate::verify`]) proves a schedule is *legal*;
//! these four rules judge whether it is *good*. Every finding is a
//! [`Severity::Warning`]: the code runs correctly, it just wastes issue
//! slots the reorganizer could provably have used. Each rule is
//! deliberately conservative — it fires only when the analyzer can exhibit
//! a concrete, dependence-respecting improvement, so a finding is always
//! actionable:
//!
//! - **missed-slot-fill** — a non-squashing delay window holds a nop while
//!   the instruction immediately before the transfer could legally move
//!   into the slot.
//! - **redundant-nop** — a nop outside every delay window that separates
//!   no load from its consumer and pads no coprocessor read-back:
//!   deleting it is free.
//! - **avoidable-load-stall** — a *needed* load-delay pad nop for which an
//!   independent instruction exists later in the same block: the wasted
//!   cycle could do real work.
//! - **cross-block-hazard-at-join** — a join head ALU-consumes a register
//!   loaded at issue distance exactly 2 along one incoming edge: legal,
//!   but with zero slack, and other edges into the join have different
//!   distances — the first cross-block scheduling change breaks it.
//!
//! [`Severity::Warning`]: crate::Severity::Warning

use crate::summary::{BlockExit, BlockSummary};
use crate::timing::TimingAnalysis;
use crate::{DiagKind, Diagnostic, LintReport, VerifyConfig};
use mipsx_asm::{DecodedEntry, Program};
use mipsx_isa::SquashMode;

/// Run only the four scheduling-quality lints.
pub fn quality(program: &Program, config: &VerifyConfig) -> LintReport {
    let ta = TimingAnalysis::of(program, config);
    LintReport::from_raw(quality_diags(&ta))
}

/// The full `--timing` report: the hazard verifier's diagnostics plus the
/// scheduling-quality findings, merged into one deterministically-sorted
/// listing.
pub fn verify_with_timing(program: &Program, config: &VerifyConfig) -> LintReport {
    let mut diags = crate::analysis::run(program, config);
    let ta = TimingAnalysis::of(program, config);
    diags.extend(quality_diags(&ta));
    LintReport::from_raw(diags)
}

/// All quality findings over an existing timing analysis.
pub fn quality_diags(ta: &TimingAnalysis) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for b in &ta.blocks {
        if b.irregular {
            continue;
        }
        let entries = block_entries(ta, b);
        missed_slot_fill(b, &entries, &mut diags);
        redundant_and_avoidable(b, &entries, &mut diags);
    }
    cross_block_hazards(ta, &mut diags);
    diags
}

fn block_entries<'a>(ta: &'a TimingAnalysis, b: &BlockSummary) -> Vec<&'a DecodedEntry> {
    (b.start..b.start + b.len)
        .map(|addr| &ta.code[&addr])
        .collect()
}

/// Can `p` move from just before the transfer `t` into `t`'s delay window,
/// preserving semantics? Conservative: `p` must be a plain register-write
/// instruction independent of `t`'s sources and destination, with no late
/// (memory-stage) result, and removing it from its old position must not
/// create a load-delay pair between its old neighbour and `t`.
fn movable_into_slot(p: &DecodedEntry, before_p: Option<&DecodedEntry>, t: &DecodedEntry) -> bool {
    let m = &p.meta;
    !m.is_nop
        && !m.is_control
        && m.squash_safe // plain register write: no store/coproc/special
        && !m.is_load
        && m.late_def.is_none()
        && m.def_mask & t.meta.use_mask == 0 // t reads its sources at resolve, before the slot
        && m.def_mask & t.meta.def_mask == 0 // don't re-order against a link write
        && m.use_mask & t.meta.def_mask == 0
        && before_p.is_none_or(|q| !q.meta.late_def.is_some_and(|d| t.meta.alu_uses(d)))
}

/// Rule 1: a nop in a window that always executes, with a provably
/// movable instruction sitting right before the transfer.
fn missed_slot_fill(b: &BlockSummary, entries: &[&DecodedEntry], diags: &mut Vec<Diagnostic>) {
    let always_executes = match b.exit {
        BlockExit::Branch { squash, .. } => squash == SquashMode::NoSquash,
        BlockExit::Jump { .. } => true,
        _ => false,
    };
    if !always_executes || b.slots == 0 {
        return;
    }
    let term = (b.len - b.slots - 1) as usize;
    // Only the first slot: moving the predecessor exactly one position
    // across the transfer is the case we can prove safe without reasoning
    // about the other slot's contents.
    let slot = term + 1;
    if !entries[slot].meta.is_nop || term == 0 {
        return;
    }
    let p = entries[term - 1];
    let before_p = term.checked_sub(2).map(|i| entries[i]);
    if movable_into_slot(p, before_p, entries[term]) {
        let addr = b.start + slot as u32;
        diags.push(Diagnostic {
            kind: DiagKind::MissedSlotFill,
            addr,
            instr: entries[slot].instr,
            detail: format!(
                "delay slot wasted: the `{}` at {:#07x} could legally fill it",
                p.instr,
                b.start + (term - 1) as u32
            ),
        });
    }
}

/// Rules 2 and 3, which share the body-nop scan: a nop outside every
/// window either pads a real hazard (then rule 3 asks whether an
/// independent instruction could replace it) or pads nothing (rule 2).
fn redundant_and_avoidable(
    b: &BlockSummary,
    entries: &[&DecodedEntry],
    diags: &mut Vec<Diagnostic>,
) {
    let body_len = (b.len - b.slots) as usize;
    for p in 1..body_len {
        if !entries[p].meta.is_nop || p + 1 >= entries.len() {
            continue;
        }
        let prev = entries[p - 1];
        let next = entries[p + 1];
        let load_pad = prev.meta.late_def.is_some_and(|d| next.meta.alu_uses(d));
        let coproc_pad = match (prev.instr, next.instr) {
            (mipsx_isa::Instr::Cpop { cop, .. }, mipsx_isa::Instr::Mvfc { cop: c2, .. }) => {
                cop == c2
            }
            _ => false,
        };
        let addr = b.start + p as u32;
        if !load_pad && !coproc_pad {
            diags.push(Diagnostic {
                kind: DiagKind::RedundantNop,
                addr,
                instr: entries[p].instr,
                detail: format!(
                    "separates no hazard (`{}` -> `{}`): deleting it is free",
                    prev.instr, next.instr
                ),
            });
            continue;
        }
        if !load_pad {
            continue;
        }
        // Rule 3: is there an independent instruction later in the body
        // that could occupy this pad slot instead of a nop?
        let d = prev.meta.late_def.expect("load_pad implies late_def");
        for j in p + 2..body_len {
            let c = entries[j];
            let cm = &c.meta;
            let plain = !cm.is_nop
                && !cm.is_control
                && cm.squash_safe
                && !cm.is_load
                && cm.late_def.is_none()
                && matches!(cm.md_role, mipsx_isa::MdRole::None)
                && !cm.alu_uses(d);
            if !plain {
                continue;
            }
            // Must commute with everything it would move ahead of.
            let commutes = (p + 1..j).all(|k| {
                let i = &entries[k].meta;
                cm.use_mask & i.def_mask == 0
                    && cm.def_mask & i.use_mask == 0
                    && cm.def_mask & i.def_mask == 0
            });
            if commutes {
                diags.push(Diagnostic {
                    kind: DiagKind::AvoidableLoadStall,
                    addr,
                    instr: entries[p].instr,
                    detail: format!(
                        "load-delay pad for `{d}` could do real work: the independent `{}` at \
                         {:#07x} fits here",
                        c.instr,
                        b.start + j as u32
                    ),
                });
                break;
            }
        }
    }
}

/// Rule 4: at every join (≥ 2 CFG predecessors), look two issue slots back
/// along each incoming edge; a surviving load-class producer there whose
/// value the join head ALU-consumes has exactly zero scheduling slack.
fn cross_block_hazards(ta: &TimingAnalysis, diags: &mut Vec<Diagnostic>) {
    let preds = ta.predecessors();
    for (j, b) in ta.blocks.iter().enumerate() {
        if b.irregular || preds[j].len() < 2 {
            continue;
        }
        let head = &ta.code[&b.start];
        if head.meta.alu_use_mask == 0 {
            continue;
        }
        for &p in &preds[j] {
            let pb = &ta.blocks[p];
            if pb.irregular || pb.len < 2 {
                continue;
            }
            // The last two issue slots along the edge into `j`. Squashed
            // slots still issue but produce nothing, so an edge whose
            // window is annulled cannot deliver a producer from there.
            let survives = match pb.exit {
                BlockExit::Branch {
                    squash,
                    target,
                    fall,
                } => {
                    let via_taken = target == b.start;
                    let via_fall = fall == b.start;
                    // Either edge reaches this join; producers survive on
                    // an edge iff the window executes on that outcome.
                    (via_taken && squash.slots_execute(true))
                        || (via_fall && squash.slots_execute(false))
                }
                _ => true,
            };
            if !survives {
                continue;
            }
            let a1 = &ta.code[&(pb.start + pb.len - 1)];
            let a2 = &ta.code[&(pb.start + pb.len - 2)];
            let Some(d) = a2.meta.late_def else {
                continue;
            };
            if head.meta.alu_uses(d) && !a1.meta.defines(d) {
                diags.push(Diagnostic {
                    kind: DiagKind::CrossBlockHazardAtJoin,
                    addr: b.start,
                    instr: head.instr,
                    detail: format!(
                        "join head consumes `{d}` loaded at distance 2 on the edge from \
                         {:#07x}: zero slack, any insertion there breaks the schedule",
                        pb.start
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiagKind;
    use mipsx_asm::assemble;

    fn findings(src: &str) -> Vec<(DiagKind, u32)> {
        let report = quality(&assemble(src).unwrap(), &VerifyConfig::default());
        report
            .diagnostics
            .iter()
            .map(|d| (d.kind, d.addr))
            .collect()
    }

    #[test]
    fn missed_slot_fill_positive() {
        // The `add` before the branch is independent of the branch sources
        // and could legally occupy the first (nop) delay slot.
        let f = findings(
            "add r5, r6, r6\n\
             beq r1, r2, t\n\
             nop\n\
             nop\n\
             t: halt",
        );
        assert_eq!(f, vec![(DiagKind::MissedSlotFill, 2)]);
    }

    #[test]
    fn missed_slot_fill_negative_producer_feeds_branch() {
        // Moving the `add` past the branch would change the compared value.
        let f = findings(
            "add r1, r6, r6\n\
             beq r1, r2, t\n\
             nop\n\
             nop\n\
             t: halt",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn missed_slot_fill_negative_squashing_window() {
        // A squashing window may be annulled; the rule only fires on
        // windows that always execute.
        let f = findings(
            "add r5, r6, r6\n\
             beqsq r1, r2, t\n\
             nop\n\
             nop\n\
             t: halt",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn redundant_nop_positive() {
        let f = findings(
            "add r3, r4, r4\n\
             nop\n\
             add r5, r6, r6\n\
             halt",
        );
        assert_eq!(f, vec![(DiagKind::RedundantNop, 1)]);
    }

    #[test]
    fn redundant_nop_negative_load_pad() {
        // The nop separates a load from its ALU consumer: required, and
        // with nothing independent to hoist, not avoidable either.
        let f = findings(
            "ld r1, 0(r2)\n\
             nop\n\
             add r3, r1, r1\n\
             halt",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn avoidable_load_stall_positive() {
        // `add r5, r6, r6` is independent of both the load and everything
        // it would move ahead of — it could fill the pad slot.
        let f = findings(
            "ld r1, 0(r2)\n\
             nop\n\
             add r3, r1, r1\n\
             add r5, r6, r6\n\
             halt",
        );
        assert_eq!(f, vec![(DiagKind::AvoidableLoadStall, 1)]);
    }

    #[test]
    fn avoidable_load_stall_negative_dependent_candidate() {
        // The only later instruction reads the consumer's result; moving
        // it ahead would read a stale value.
        let f = findings(
            "ld r1, 0(r2)\n\
             nop\n\
             add r3, r1, r1\n\
             add r4, r3, r3\n\
             halt",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cross_block_hazard_positive() {
        // The join head consumes `r1`, loaded two issue slots back along
        // the fall-through edge — zero slack.
        let f = findings(
            "beq r9, r0, t\n\
             nop\n\
             nop\n\
             ld r1, 0(r2)\n\
             nop\n\
             t: add r3, r1, r1\n\
             halt",
        );
        assert_eq!(f, vec![(DiagKind::CrossBlockHazardAtJoin, 5)]);
    }

    #[test]
    fn cross_block_hazard_negative_with_slack() {
        // One more nop gives the load distance 3: slack exists, so the
        // join rule stays quiet (the extra pad nop is its own finding).
        let f = findings(
            "beq r9, r0, t\n\
             nop\n\
             nop\n\
             ld r1, 0(r2)\n\
             nop\n\
             nop\n\
             t: add r3, r1, r1\n\
             halt",
        );
        assert!(
            !f.iter()
                .any(|(k, _)| *k == DiagKind::CrossBlockHazardAtJoin),
            "{f:?}"
        );
    }
}
