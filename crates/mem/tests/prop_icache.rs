//! Property tests: the instruction cache against a brute-force reference
//! model, plus structural invariants.

use mipsx_mem::{FetchOutcome, Icache, IcacheConfig, Replacement};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

/// Brute-force reference: per row, a FIFO of (tag, valid-words) blocks with
/// the same capacity. Mirrors the cache's documented behaviour
/// word-for-word, with none of its packing tricks.
struct RefCache {
    cfg: IcacheConfig,
    rows: Vec<VecDeque<(u32, HashMap<u32, bool>)>>,
}

impl RefCache {
    fn new(cfg: IcacheConfig) -> RefCache {
        RefCache {
            cfg,
            rows: (0..cfg.rows).map(|_| VecDeque::new()).collect(),
        }
    }

    fn locate(&self, addr: u32) -> (usize, u32, u32) {
        let block = addr / self.cfg.block_words;
        (
            (block % self.cfg.rows) as usize,
            block / self.cfg.rows,
            addr % self.cfg.block_words,
        )
    }

    fn probe(&self, addr: u32) -> bool {
        let (row, tag, word) = self.locate(addr);
        self.rows[row]
            .iter()
            .any(|(t, valid)| *t == tag && valid.get(&word).copied().unwrap_or(false))
    }

    fn fill(&mut self, addr: u32) {
        let (row, tag, word) = self.locate(addr);
        if let Some((_, valid)) = self.rows[row].iter_mut().find(|(t, _)| *t == tag) {
            valid.insert(word, true);
            return;
        }
        if self.rows[row].len() as u32 >= self.cfg.ways {
            self.rows[row].pop_front(); // FIFO victim
        }
        let mut valid = HashMap::new();
        valid.insert(word, true);
        self.rows[row].push_back((tag, valid));
    }
}

fn small_cfg() -> IcacheConfig {
    IcacheConfig {
        rows: 2,
        ways: 2,
        block_words: 4,
        fetch_words: 1,
        miss_penalty: 2,
        replacement: Replacement::Fifo,
        enabled: true,
        whole_block_fill: false,
    }
}

proptest! {
    /// Hit/miss decisions must match the reference model exactly over any
    /// access sequence (single-word fetch, FIFO replacement).
    #[test]
    fn matches_reference_model(addrs in prop::collection::vec(0u32..64, 1..400)) {
        let cfg = small_cfg();
        let mut cache = Icache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for &a in &addrs {
            let expected = reference.probe(a);
            let got = cache.fetch(a) == FetchOutcome::Hit;
            prop_assert_eq!(got, expected, "divergence at address {}", a);
            if !expected {
                reference.fill(a);
                cache.fill(a);
            }
        }
    }

    /// A fetch immediately after a fill of the same address always hits,
    /// under every replacement policy and fetch width.
    #[test]
    fn fill_then_fetch_hits(
        addrs in prop::collection::vec(any::<u32>(), 1..100),
        policy in prop::sample::select(vec![Replacement::Fifo, Replacement::Lru, Replacement::Random]),
        fetch_words in 1u32..=2,
    ) {
        let mut cache = Icache::new(IcacheConfig {
            replacement: policy,
            fetch_words,
            ..IcacheConfig::mipsx()
        });
        for &a in &addrs {
            cache.fill(a);
            prop_assert_eq!(cache.fetch(a), FetchOutcome::Hit);
        }
    }

    /// Statistics identity: hits + misses == accesses, and the miss ratio
    /// stays within [0, 1].
    #[test]
    fn stats_are_consistent(addrs in prop::collection::vec(0u32..2048, 0..500)) {
        let mut cache = Icache::mipsx();
        let result = cache.simulate_trace(addrs.iter().copied());
        let s = result.stats;
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert!((0.0..=1.0).contains(&s.miss_ratio()));
        prop_assert!(result.avg_fetch_cycles >= 1.0 || s.accesses == 0);
    }

    /// Double fetch-back never hurts: over any trace, misses with
    /// `fetch_words = 2` are at most those with `fetch_words = 1`.
    #[test]
    fn double_fetch_never_worse(addrs in prop::collection::vec(0u32..4096, 1..600)) {
        // Sequentially biased trace: mix raw addresses with short runs.
        let mut trace = Vec::new();
        for &a in &addrs {
            for k in 0..(a % 4) {
                trace.push(a.wrapping_add(k) % 4096);
            }
            trace.push(a);
        }
        let run = |fetch_words| {
            let mut c = Icache::new(IcacheConfig { fetch_words, ..IcacheConfig::mipsx() });
            c.simulate_trace(trace.iter().copied()).stats.misses
        };
        prop_assert!(run(2) <= run(1));
    }
}
