//! Cache statistics.

use std::fmt;

/// Why an access missed (the classic 3-C taxonomy, adapted: the sub-block
/// placement scheme adds its own category).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MissCause {
    /// First-ever reference to the block.
    Cold,
    /// The block was resident earlier and has been displaced (capacity and
    /// conflict misses are not distinguished — with 4 rows of 8 ways they
    /// are the same phenomenon at this scale).
    Conflict,
    /// The tag is resident but the word's sub-block valid bit is clear —
    /// the miss the 512 per-word valid bits trade against whole-block
    /// fills.
    SubBlockInvalid,
}

impl fmt::Display for MissCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MissCause::Cold => "cold",
            MissCause::Conflict => "conflict",
            MissCause::SubBlockInvalid => "sub-block-invalid",
        })
    }
}

/// Hit/miss/stall accounting shared by the instruction and external caches.
///
/// The paper's figure of merit is the *average cost of an instruction fetch*,
/// *"a function of the cache hit rate, the miss penalty, and the cache access
/// time"* — with the key finding that *"the performance of the cache was more
/// sensitive to the miss service time than the miss ratio."*
/// [`CacheStats::avg_access_cycles`] captures exactly that product.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Total accesses presented to the cache.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Processor stall cycles spent servicing misses.
    pub stall_cycles: u64,
    /// Words transferred in from the next level (fetch-back traffic).
    pub words_filled: u64,
    /// Misses to never-before-seen blocks.
    pub cold_misses: u64,
    /// Misses to blocks that were resident once and got displaced.
    pub conflict_misses: u64,
    /// Misses where the tag hit but the word's sub-block valid bit was
    /// clear.
    pub sub_block_misses: u64,
}

impl CacheStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses happened.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit ratio in `[0, 1]`; zero when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Average cycles per access: 1 (the access itself) plus amortized
    /// stall cycles. The paper reports 1.24 cycles per instruction fetch for
    /// the final design on its large benchmarks.
    pub fn avg_access_cycles(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 + self.stall_cycles as f64 / self.accesses as f64
        }
    }

    /// Record a hit.
    #[inline]
    pub fn record_hit(&mut self) {
        self.accesses += 1;
        self.hits += 1;
    }

    /// Record a miss costing `stall` processor cycles and filling
    /// `words` words.
    #[inline]
    pub fn record_miss(&mut self, stall: u64, words: u64) {
        self.accesses += 1;
        self.misses += 1;
        self.stall_cycles += stall;
        self.words_filled += words;
    }

    /// Record a miss with no service cost yet (the cost arrives later via
    /// [`CacheStats::add_miss_cost`] once the fill completes).
    #[inline]
    pub fn record_miss_pending(&mut self) {
        self.accesses += 1;
        self.misses += 1;
    }

    /// Attribute service cost to a previously recorded miss.
    #[inline]
    pub fn add_miss_cost(&mut self, stall: u64, words: u64) {
        self.stall_cycles += stall;
        self.words_filled += words;
    }

    /// Classify the most recently recorded miss.
    #[inline]
    pub fn record_miss_cause(&mut self, cause: MissCause) {
        match cause {
            MissCause::Cold => self.cold_misses += 1,
            MissCause::Conflict => self.conflict_misses += 1,
            MissCause::SubBlockInvalid => self.sub_block_misses += 1,
        }
    }

    /// Misses that have been classified (equals [`CacheStats::misses`] when
    /// the owning cache classifies every miss).
    pub fn classified_misses(&self) -> u64 {
        self.cold_misses + self.conflict_misses + self.sub_block_misses
    }

    /// Merge another set of statistics into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.stall_cycles += other.stall_cycles;
        self.words_filled += other.words_filled;
        self.cold_misses += other.cold_misses;
        self.conflict_misses += other.conflict_misses;
        self.sub_block_misses += other.sub_block_misses;
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} misses={} ({:.2}%) stalls={} avg={:.3} cyc/access",
            self.accesses,
            self.misses,
            self.miss_ratio() * 100.0,
            self.stall_cycles,
            self.avg_access_cycles()
        )?;
        if self.classified_misses() > 0 {
            write!(
                f,
                " [cold={} conflict={} sub-block={}]",
                self.cold_misses, self.conflict_misses, self.sub_block_misses
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_with_no_accesses() {
        let s = CacheStats::new();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.avg_access_cycles(), 0.0);
    }

    #[test]
    fn accounting() {
        let mut s = CacheStats::new();
        s.record_hit();
        s.record_hit();
        s.record_miss(2, 2);
        s.record_miss(4, 2);
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.stall_cycles, 6);
        assert_eq!(s.words_filled, 4);
        assert!((s.miss_ratio() - 0.5).abs() < 1e-12);
        assert!((s.avg_access_cycles() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds() {
        let mut a = CacheStats::new();
        a.record_hit();
        let mut b = CacheStats::new();
        b.record_miss(3, 1);
        a.merge(&b);
        assert_eq!(a.accesses, 2);
        assert_eq!(a.stall_cycles, 3);
    }

    #[test]
    fn display_mentions_miss_percent() {
        let mut s = CacheStats::new();
        s.record_miss(2, 1);
        assert!(s.to_string().contains("100.00%"));
    }

    #[test]
    fn miss_causes_accumulate_and_merge() {
        let mut a = CacheStats::new();
        a.record_miss(2, 1);
        a.record_miss_cause(MissCause::Cold);
        a.record_miss(2, 1);
        a.record_miss_cause(MissCause::SubBlockInvalid);
        let mut b = CacheStats::new();
        b.record_miss(2, 1);
        b.record_miss_cause(MissCause::Conflict);
        a.merge(&b);
        assert_eq!(a.cold_misses, 1);
        assert_eq!(a.conflict_misses, 1);
        assert_eq!(a.sub_block_misses, 1);
        assert_eq!(a.classified_misses(), a.misses);
        let text = a.to_string();
        assert!(text.contains("cold=1"), "{text}");
        assert!(text.contains("sub-block=1"), "{text}");
    }
}
