//! The on-chip instruction cache.
//!
//! *"The instruction cache is organized as an 8-way set-associative cache,
//! with 4 sets (rows) and 16 words in each block (line). A sub-block
//! replacement scheme is used so there are 512 valid bits, one per word, as
//! well as the 32 tags."*
//!
//! Two design decisions from the paper are first-class parameters here:
//!
//! - **miss service time**: placing the tags in the datapath made a 2-cycle
//!   miss possible instead of 3 — the paper found performance *"more
//!   sensitive to the miss service time than the miss ratio"*;
//! - **double-word fetch-back**: *"the 2 cache miss cycles could be used to
//!   fetch back 2 instructions, the one that missed and the next one to be
//!   executed ... Fetching back 2 words almost halves the miss ratio."*

use std::collections::HashSet;

use crate::stats::MissCause;
use crate::{CacheStats, Ecache, MainMemory};

/// Replacement policy within a row.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Replacement {
    /// Round-robin victim per row — a shift register in hardware, the kind
    /// of minimal logic the MIPS-X control philosophy favors.
    #[default]
    Fifo,
    /// Least-recently-used (more state; modeled for the organization sweep).
    Lru,
    /// Pseudo-random (xorshift; deterministic across runs).
    Random,
}

/// Organization of the instruction cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IcacheConfig {
    /// Number of rows (sets).
    pub rows: u32,
    /// Associativity (blocks per row).
    pub ways: u32,
    /// Words per block.
    pub block_words: u32,
    /// Words fetched back per miss (1 or 2). The real machine fetches 2.
    pub fetch_words: u32,
    /// Processor stall cycles per Icache miss (before any Ecache stall).
    /// 2 in the real machine; 3 if the tags had not been in the datapath.
    pub miss_penalty: u32,
    /// Replacement policy.
    pub replacement: Replacement,
    /// When false, every fetch bypasses the cache (the instruction-register
    /// test feature: *"allowing the processor to run with the cache
    /// disabled"*).
    pub enabled: bool,
    /// Ablation of the sub-block valid bits: when true, a miss fills the
    /// *entire* block before the processor resumes, paying one bus cycle
    /// per word (the external path delivers one word per 50 ns cycle —
    /// that is why the shipped double fetch-back takes exactly 2 cycles)
    /// instead of the 2-cycle sub-block service. This is the design the
    /// 512 per-word valid bits exist to avoid.
    pub whole_block_fill: bool,
}

impl IcacheConfig {
    /// The shipped MIPS-X organization: 4 rows × 8 ways × 16 words =
    /// 512 words, 2-cycle miss, double-word fetch-back.
    pub fn mipsx() -> IcacheConfig {
        IcacheConfig {
            rows: 4,
            ways: 8,
            block_words: 16,
            fetch_words: 2,
            miss_penalty: 2,
            replacement: Replacement::Fifo,
            enabled: true,
            whole_block_fill: false,
        }
    }

    /// Total capacity in words.
    pub fn size_words(&self) -> u32 {
        self.rows * self.ways * self.block_words
    }

    fn validate(&self) {
        assert!(self.rows.is_power_of_two(), "rows must be a power of two");
        assert!(
            self.block_words.is_power_of_two() && self.block_words <= 64,
            "block words must be a power of two <= 64"
        );
        assert!(self.ways >= 1, "at least one way");
        assert!(
            self.fetch_words == 1 || self.fetch_words == 2,
            "fetch-back of 1 or 2 words"
        );
    }
}

impl Default for IcacheConfig {
    fn default() -> IcacheConfig {
        IcacheConfig::mipsx()
    }
}

/// One cached block: a tag plus per-word valid bits (sub-block placement).
#[derive(Clone, Copy, Debug, Default)]
struct Block {
    tag: Option<u32>,
    /// Bit `i` set ⇔ word `i` of the block is valid.
    valid: u64,
    /// Recency stamp for LRU.
    stamp: u64,
}

/// Result of probing the instruction cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FetchOutcome {
    /// The word is resident.
    Hit,
    /// The word is absent; servicing costs the configured penalty plus any
    /// external-cache stall.
    Miss,
}

/// Result of a trace-driven simulation run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceResult {
    /// Hit/miss accounting for the run.
    pub stats: CacheStats,
    /// Average cycles per instruction fetch (1 + amortized stalls) — the
    /// paper's cost metric (1.24 for the final design).
    pub avg_fetch_cycles: f64,
}

/// The on-chip instruction cache.
#[derive(Clone, Debug)]
pub struct Icache {
    cfg: IcacheConfig,
    /// `blocks[row * ways + way]`.
    blocks: Vec<Block>,
    /// FIFO pointer per row.
    fifo: Vec<u32>,
    /// Recency counter for LRU stamps.
    clock: u64,
    /// xorshift state for random replacement.
    rng: u64,
    /// Block addresses ever referenced, for cold/conflict classification.
    seen_blocks: HashSet<u32>,
    stats: CacheStats,
}

impl Icache {
    /// Build an instruction cache with the given organization.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`IcacheConfig`] field
    /// docs).
    pub fn new(cfg: IcacheConfig) -> Icache {
        cfg.validate();
        Icache {
            blocks: vec![Block::default(); (cfg.rows * cfg.ways) as usize],
            fifo: vec![0; cfg.rows as usize],
            clock: 0,
            rng: 0x9E37_79B9_7F4A_7C15,
            seen_blocks: HashSet::new(),
            cfg,
            stats: CacheStats::new(),
        }
    }

    /// The shipped MIPS-X organization.
    pub fn mipsx() -> Icache {
        Icache::new(IcacheConfig::mipsx())
    }

    /// The cache's configuration.
    pub fn config(&self) -> IcacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics, keeping contents warm.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Invalidate everything (cold start — miss classification restarts
    /// too, so the first re-reference of each block counts as cold again).
    pub fn invalidate_all(&mut self) {
        for b in &mut self.blocks {
            *b = Block::default();
        }
        self.fifo.fill(0);
        self.seen_blocks.clear();
    }

    #[inline]
    fn locate(&self, addr: u32) -> (u32, u32, u32) {
        let block_addr = addr / self.cfg.block_words;
        let row = block_addr % self.cfg.rows;
        let tag = block_addr / self.cfg.rows;
        let word = addr % self.cfg.block_words;
        (row, tag, word)
    }

    #[inline]
    fn block_index(&self, row: u32, way: u32) -> usize {
        (row * self.cfg.ways + way) as usize
    }

    /// Drop the sub-block valid bit covering `addr`, as a detected parity
    /// error would: the stored word can no longer be trusted, so the next
    /// fetch of `addr` misses with [`MissCause::SubBlockInvalid`] and
    /// refetches the word (and its fetch-back partner) through the external
    /// cache. The block's tag stays resident — parity kills one word, not
    /// the block. Returns whether the word was resident (a non-resident
    /// word has no parity to fail).
    pub fn invalidate_word(&mut self, addr: u32) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let (row, tag, word) = self.locate(addr);
        for way in 0..self.cfg.ways {
            let index = self.block_index(row, way);
            let b = &mut self.blocks[index];
            if b.tag == Some(tag) && b.valid & (1 << word) != 0 {
                b.valid &= !(1 << word);
                return true;
            }
        }
        false
    }

    /// Whether `addr` is resident (no statistics side effects).
    pub fn probe(&self, addr: u32) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let (row, tag, word) = self.locate(addr);
        (0..self.cfg.ways).any(|way| {
            let b = &self.blocks[self.block_index(row, way)];
            b.tag == Some(tag) && b.valid & (1 << word) != 0
        })
    }

    /// Record a fetch of `addr`, updating statistics and replacement state.
    /// On a miss the service cost is attributed separately by whoever
    /// services it ([`Icache::fetch_through`] or [`Icache::simulate_trace`]).
    pub fn fetch(&mut self, addr: u32) -> FetchOutcome {
        if !self.cfg.enabled {
            // A disabled cache never retains anything: every fetch is a
            // compulsory trip off-chip.
            self.stats.record_miss_pending();
            self.stats.record_miss_cause(MissCause::Cold);
            return FetchOutcome::Miss;
        }
        let (row, tag, word) = self.locate(addr);
        for way in 0..self.cfg.ways {
            let index = self.block_index(row, way);
            if self.blocks[index].tag == Some(tag) && self.blocks[index].valid & (1 << word) != 0 {
                self.clock += 1;
                self.blocks[index].stamp = self.clock;
                self.stats.record_hit();
                return FetchOutcome::Hit;
            }
        }
        self.stats.record_miss_pending();
        let tag_present =
            (0..self.cfg.ways).any(|way| self.blocks[self.block_index(row, way)].tag == Some(tag));
        let block_addr = addr / self.cfg.block_words;
        let first_reference = self.seen_blocks.insert(block_addr);
        let cause = if tag_present {
            MissCause::SubBlockInvalid
        } else if first_reference {
            MissCause::Cold
        } else {
            MissCause::Conflict
        };
        self.stats.record_miss_cause(cause);
        FetchOutcome::Miss
    }

    /// Install `addr` (allocating a block if its tag is absent) and mark its
    /// word valid. Returns true if a whole block had to be (re)allocated.
    pub fn fill(&mut self, addr: u32) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let (row, tag, word) = self.locate(addr);
        // Tag already present: just set the sub-block valid bit.
        for way in 0..self.cfg.ways {
            let index = self.block_index(row, way);
            if self.blocks[index].tag == Some(tag) {
                self.blocks[index].valid |= 1 << word;
                self.clock += 1;
                self.blocks[index].stamp = self.clock;
                return false;
            }
        }
        // Allocate a victim way.
        let way = self.pick_victim(row);
        let index = self.block_index(row, way);
        self.clock += 1;
        self.blocks[index] = Block {
            tag: Some(tag),
            valid: 1 << word,
            stamp: self.clock,
        };
        true
    }

    fn pick_victim(&mut self, row: u32) -> u32 {
        // Prefer an unallocated way regardless of policy.
        for way in 0..self.cfg.ways {
            if self.blocks[self.block_index(row, way)].tag.is_none() {
                return way;
            }
        }
        match self.cfg.replacement {
            Replacement::Fifo => {
                let way = self.fifo[row as usize];
                self.fifo[row as usize] = (way + 1) % self.cfg.ways;
                way
            }
            Replacement::Lru => (0..self.cfg.ways)
                .min_by_key(|&way| self.blocks[self.block_index(row, way)].stamp)
                .unwrap_or(0),
            Replacement::Random => {
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng % self.cfg.ways as u64) as u32
            }
        }
    }

    /// Fetch through the full hierarchy, servicing misses via the external
    /// cache and main memory.
    ///
    /// Returns `(instruction word, stall cycles)`. A hit costs no stalls; a
    /// miss costs [`IcacheConfig::miss_penalty`] plus whatever the Ecache
    /// retry loop adds, and fetches back [`IcacheConfig::fetch_words`] words
    /// (the missed word and its sequential successor — the paper's key
    /// bandwidth observation).
    pub fn fetch_through(
        &mut self,
        addr: u32,
        ecache: &mut Ecache,
        mem: &mut MainMemory,
    ) -> (u32, u32) {
        if self.fetch(addr) == FetchOutcome::Hit {
            return (mem.peek(addr), 0);
        }
        // Miss: the word comes on-chip through the Ecache.
        let (word, ecache_extra) = ecache.read(addr, mem);
        let mut stall;
        let mut filled;
        if self.cfg.whole_block_fill {
            // Ablation: stream the whole block in at one word per bus cycle.
            stall = self.cfg.block_words.max(2) + ecache_extra;
            filled = 0u64;
            let base = addr - addr % self.cfg.block_words;
            for w in 0..self.cfg.block_words {
                let (_, extra) = ecache.read(base + w, mem);
                stall += extra;
                self.fill(base + w);
                filled += 1;
            }
        } else {
            stall = self.cfg.miss_penalty + ecache_extra;
            filled = 1u64;
            self.fill(addr);
            if self.cfg.fetch_words == 2 {
                // The second fetch rides the otherwise-idle miss cycle; only
                // an Ecache miss on it can add stalls (rare: same block).
                let (_, extra2) = ecache.read(addr + 1, mem);
                stall += extra2;
                self.fill(addr + 1);
                filled += 1;
            }
        }
        self.stats.add_miss_cost(stall as u64, filled);
        (word, stall)
    }

    /// Drive the cache with a pure instruction-address trace, charging the
    /// configured miss penalty per miss (no Ecache model — the paper's
    /// cache-organization studies were run exactly this way, trace-driven).
    pub fn simulate_trace<I: IntoIterator<Item = u32>>(&mut self, trace: I) -> TraceResult {
        for addr in trace {
            if self.fetch(addr) == FetchOutcome::Miss {
                if self.cfg.whole_block_fill {
                    let base = addr - addr % self.cfg.block_words;
                    for w in 0..self.cfg.block_words {
                        self.fill(base + w);
                    }
                    self.stats.add_miss_cost(
                        self.cfg.block_words.max(2) as u64,
                        self.cfg.block_words as u64,
                    );
                } else {
                    let mut filled = 1;
                    self.fill(addr);
                    if self.cfg.fetch_words == 2 {
                        self.fill(addr + 1);
                        filled += 1;
                    }
                    self.stats
                        .add_miss_cost(self.cfg.miss_penalty as u64, filled);
                }
            }
        }
        TraceResult {
            stats: self.stats,
            avg_fetch_cycles: self.stats.avg_access_cycles(),
        }
    }

    /// Per-set/way occupancy: `occupancy()[row][way]` is the number of
    /// valid words in that block (0..=block_words; 0 with no tag means the
    /// way is unallocated).
    pub fn occupancy(&self) -> Vec<Vec<u32>> {
        let mask = if self.cfg.block_words == 64 {
            u64::MAX
        } else {
            (1u64 << self.cfg.block_words) - 1
        };
        (0..self.cfg.rows)
            .map(|row| {
                (0..self.cfg.ways)
                    .map(|way| {
                        let b = &self.blocks[self.block_index(row, way)];
                        if b.tag.is_some() {
                            (b.valid & mask).count_ones()
                        } else {
                            0
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Render the occupancy grid: one line per row (set), one cell per way
    /// with the valid-word count, `.` marking unallocated ways.
    pub fn occupancy_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "icache occupancy ({} rows x {} ways, {} words/block):\n",
            self.cfg.rows, self.cfg.ways, self.cfg.block_words
        ));
        for (row, ways) in self.occupancy().into_iter().enumerate() {
            out.push_str(&format!("  row {row}:"));
            for (way, count) in ways.into_iter().enumerate() {
                let b = &self.blocks[self.block_index(row as u32, way as u32)];
                if b.tag.is_some() {
                    out.push_str(&format!(" {count:>2}"));
                } else {
                    out.push_str("  .");
                }
            }
            out.push('\n');
        }
        out
    }
}

impl Default for Icache {
    fn default() -> Icache {
        Icache::mipsx()
    }
}

/// Plain-data image of an [`Icache`]'s mutable state — tags, sub-block
/// valid bits, replacement state (FIFO pointers, LRU clock, xorshift RNG),
/// miss-classification history, and statistics — for checkpointing. The
/// configuration is *not* part of the state: the owner restores into a
/// cache built with the identical [`IcacheConfig`], and
/// [`Icache::restore_state`] rejects a state whose shape does not match.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IcacheState {
    /// `(tag, valid bits, recency stamp)` per block, in
    /// `row * ways + way` order.
    pub blocks: Vec<(Option<u32>, u64, u64)>,
    /// FIFO victim pointer per row.
    pub fifo: Vec<u32>,
    /// LRU recency clock.
    pub clock: u64,
    /// xorshift state for random replacement.
    pub rng: u64,
    /// Block addresses ever referenced, sorted ascending (so the encoding
    /// of the same cache state is always byte-identical).
    pub seen_blocks: Vec<u32>,
    /// Accumulated statistics.
    pub stats: CacheStats,
}

impl Icache {
    /// Capture the cache's mutable state for a checkpoint.
    pub fn snapshot_state(&self) -> IcacheState {
        let mut seen_blocks: Vec<u32> = self.seen_blocks.iter().copied().collect();
        seen_blocks.sort_unstable();
        IcacheState {
            blocks: self
                .blocks
                .iter()
                .map(|b| (b.tag, b.valid, b.stamp))
                .collect(),
            fifo: self.fifo.clone(),
            clock: self.clock,
            rng: self.rng,
            seen_blocks,
            stats: self.stats,
        }
    }

    /// Overwrite the cache's mutable state from a checkpoint taken from a
    /// cache with the same configuration. Fails (leaving the cache
    /// untouched) if the state's shape does not match this organization.
    pub fn restore_state(&mut self, state: &IcacheState) -> Result<(), String> {
        if state.blocks.len() != self.blocks.len() {
            return Err(format!(
                "icache state has {} blocks, organization needs {}",
                state.blocks.len(),
                self.blocks.len()
            ));
        }
        if state.fifo.len() != self.fifo.len() {
            return Err(format!(
                "icache state has {} fifo pointers, organization needs {}",
                state.fifo.len(),
                self.fifo.len()
            ));
        }
        for (b, &(tag, valid, stamp)) in self.blocks.iter_mut().zip(&state.blocks) {
            *b = Block { tag, valid, stamp };
        }
        self.fifo.copy_from_slice(&state.fifo);
        self.clock = state.clock;
        self.rng = state.rng;
        self.seen_blocks = state.seen_blocks.iter().copied().collect();
        self.stats = state.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mipsx_organization_is_512_words() {
        let cfg = IcacheConfig::mipsx();
        assert_eq!(cfg.size_words(), 512);
        assert_eq!(cfg.rows * cfg.ways, 32); // 32 tags
        assert_eq!(cfg.size_words(), 512); // 512 valid bits, one per word
    }

    #[test]
    fn miss_then_hit_same_word() {
        let mut c = Icache::mipsx();
        assert_eq!(c.fetch(100), FetchOutcome::Miss);
        c.fill(100);
        assert_eq!(c.fetch(100), FetchOutcome::Hit);
    }

    #[test]
    fn sub_block_validity_is_per_word() {
        let mut c = Icache::mipsx();
        c.fill(0);
        assert!(c.probe(0));
        // Word 1 of the same block is NOT valid until filled.
        assert!(!c.probe(1));
        c.fill(1);
        assert!(c.probe(1));
    }

    #[test]
    fn double_fetch_halves_sequential_misses() {
        // A purely sequential trace: with fetch_words=2 every other fetch
        // hits, so the miss ratio is half that of fetch_words=1.
        let trace: Vec<u32> = (0..4096).collect();
        let mut single = Icache::new(IcacheConfig {
            fetch_words: 1,
            ..IcacheConfig::mipsx()
        });
        let mut double = Icache::new(IcacheConfig::mipsx());
        let r1 = single.simulate_trace(trace.iter().copied());
        let r2 = double.simulate_trace(trace.iter().copied());
        assert!((r1.stats.miss_ratio() - 1.0).abs() < 1e-9);
        assert!((r2.stats.miss_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn loop_inside_cache_hits_forever() {
        let mut c = Icache::mipsx();
        let loop_body: Vec<u32> = (0..64).collect();
        // Warm up.
        let _ = c.simulate_trace(loop_body.iter().copied());
        c.reset_stats();
        for _ in 0..10 {
            let _ = c.simulate_trace(loop_body.iter().copied());
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Icache::mipsx();
        // 4096-word loop >> 512-word cache: every block is evicted before
        // reuse, so the steady-state miss ratio stays at the cold rate.
        let big_loop: Vec<u32> = (0..4096).collect();
        for _ in 0..4 {
            let _ = c.simulate_trace(big_loop.iter().copied());
        }
        assert!(c.stats().miss_ratio() > 0.4);
    }

    #[test]
    fn fetch_through_returns_memory_contents() {
        let mut c = Icache::mipsx();
        let mut e = Ecache::mipsx();
        let mut m = MainMemory::new();
        m.write(40, 0xABCD);
        let (w, stall) = c.fetch_through(40, &mut e, &mut m);
        assert_eq!(w, 0xABCD);
        // 2-cycle Icache penalty + Ecache cold miss (1 late + 5 memory).
        assert_eq!(stall, 8);
        let (w, stall) = c.fetch_through(40, &mut e, &mut m);
        assert_eq!(w, 0xABCD);
        assert_eq!(stall, 0);
        // The double fetch installed word 41 too.
        let (_, stall) = c.fetch_through(41, &mut e, &mut m);
        assert_eq!(stall, 0);
    }

    #[test]
    fn disabled_cache_misses_every_fetch() {
        let mut c = Icache::new(IcacheConfig {
            enabled: false,
            ..IcacheConfig::mipsx()
        });
        let r = c.simulate_trace([0, 0, 0]);
        assert_eq!(r.stats.misses, 3);
    }

    #[test]
    fn replacement_policies_differ_but_work() {
        for policy in [Replacement::Fifo, Replacement::Lru, Replacement::Random] {
            let mut c = Icache::new(IcacheConfig {
                replacement: policy,
                ..IcacheConfig::mipsx()
            });
            // 9 conflicting blocks in a 8-way row force evictions.
            let conflicting: Vec<u32> = (0..9)
                .map(|i| i * IcacheConfig::mipsx().block_words * IcacheConfig::mipsx().rows)
                .collect();
            for _ in 0..4 {
                for &a in &conflicting {
                    if c.fetch(a) == FetchOutcome::Miss {
                        c.fill(a);
                    }
                }
            }
            assert!(c.stats().misses >= 9, "{policy:?} must evict");
        }
    }

    #[test]
    fn lru_beats_fifo_on_skewed_reuse() {
        // One hot block touched between bursts of conflicting blocks: LRU
        // keeps it, FIFO eventually rotates it out.
        let cfg = IcacheConfig {
            rows: 1,
            ways: 4,
            block_words: 4,
            fetch_words: 1,
            ..IcacheConfig::mipsx()
        };
        let mut trace = Vec::new();
        for round in 0..64u32 {
            trace.push(0); // hot block
                           // Three distinct cold blocks per round.
            for k in 0..3 {
                trace.push((1 + round * 3 + k) * 4);
            }
        }
        let run = |replacement| {
            let mut c = Icache::new(IcacheConfig { replacement, ..cfg });
            c.simulate_trace(trace.iter().copied()).stats.misses
        };
        assert!(run(Replacement::Lru) < run(Replacement::Fifo));
    }

    #[test]
    fn avg_fetch_cycles_formula() {
        let mut c = Icache::mipsx();
        let r = c.simulate_trace((0..100u32).chain(0..100));
        // Sequential + repeat: some hits, some misses; cost = 1 + 2*missratio.
        let expected = 1.0 + 2.0 * r.stats.miss_ratio();
        assert!((r.avg_fetch_cycles - expected).abs() < 1e-9);
    }

    #[test]
    fn miss_causes_classified() {
        // 1 row x 2 ways x 4-word blocks: easy to force every miss kind.
        let mut c = Icache::new(IcacheConfig {
            rows: 1,
            ways: 2,
            block_words: 4,
            fetch_words: 1,
            ..IcacheConfig::mipsx()
        });
        assert_eq!(c.fetch(0), FetchOutcome::Miss); // cold (block 0)
        c.fill(0);
        assert_eq!(c.fetch(1), FetchOutcome::Miss); // sub-block (word 1 invalid)
        c.fill(1);
        assert_eq!(c.fetch(4), FetchOutcome::Miss); // cold (block 1)
        c.fill(4);
        assert_eq!(c.fetch(8), FetchOutcome::Miss); // cold (block 2, evicts block 0)
        c.fill(8);
        assert_eq!(c.fetch(0), FetchOutcome::Miss); // conflict (block 0 again)
        c.fill(0);
        let s = c.stats();
        assert_eq!(s.cold_misses, 3);
        assert_eq!(s.sub_block_misses, 1);
        assert_eq!(s.conflict_misses, 1);
        assert_eq!(s.classified_misses(), s.misses);
        // Occupancy reflects the valid words per way.
        let occ = c.occupancy();
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].len(), 2);
        // Final contents: block 2 (word 8) in way 0, refilled block 0
        // (word 0) in way 1 — one valid word each.
        assert_eq!(occ[0].iter().sum::<u32>(), 2);
        assert!(c.occupancy_report().contains("icache occupancy"));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_rows_panics() {
        let _ = Icache::new(IcacheConfig {
            rows: 3,
            ..IcacheConfig::mipsx()
        });
    }
}
