//! The external cache with the late-miss protocol.

use std::collections::HashSet;

use crate::stats::MissCause;
use crate::{CacheStats, MainMemory};

/// Organization of the external cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EcacheConfig {
    /// Total capacity in words. The paper's board uses *"a large 64K word
    /// external cache."*
    pub size_words: u32,
    /// Words per block (line).
    pub block_words: u32,
    /// Extra cycles lost to the **late miss**: the cache *"would inform the
    /// processor at the beginning of the WB cycle whether the cache access
    /// during MEM was successful"*, so one MEM cycle is always wasted before
    /// the retry loop starts.
    pub late_miss_overhead: u32,
    /// When false, every access goes straight to main memory (the test
    /// feature the instruction-register latch provides on the real chip).
    pub enabled: bool,
}

impl EcacheConfig {
    /// The configuration of the MIPS-X board: 64K words, 4-word blocks,
    /// 1-cycle late-miss overhead.
    pub fn mipsx() -> EcacheConfig {
        EcacheConfig {
            size_words: 64 * 1024,
            block_words: 4,
            late_miss_overhead: 1,
            enabled: true,
        }
    }

    fn validate(&self) {
        assert!(
            self.block_words.is_power_of_two(),
            "block size power of two"
        );
        assert!(self.size_words.is_power_of_two(), "cache size power of two");
        assert!(
            self.size_words >= self.block_words,
            "cache smaller than one block"
        );
    }

    fn num_blocks(&self) -> u32 {
        self.size_words / self.block_words
    }
}

impl Default for EcacheConfig {
    fn default() -> EcacheConfig {
        EcacheConfig::mipsx()
    }
}

/// The 64K-word external cache.
///
/// Direct-mapped, write-through with buffered (non-stalling) writes, and the
/// late-miss retry loop on read misses: the processor re-executes φ2 of its
/// MEM stage each cycle until main memory returns the block, costing
/// `late_miss_overhead + memory latency` stall cycles.
///
/// Data is not duplicated here — the cache tracks only tags and validity and
/// reads through to [`MainMemory`], which is exact for a write-through
/// hierarchy (the cache can never hold a value that differs from memory).
#[derive(Clone, Debug)]
pub struct Ecache {
    cfg: EcacheConfig,
    /// `tags[index]` = tag of the block cached in that frame.
    tags: Vec<Option<u32>>,
    /// Block addresses ever read, for cold/conflict classification.
    seen_blocks: HashSet<u32>,
    stats: CacheStats,
}

impl Ecache {
    /// Build an external cache with the given organization.
    ///
    /// # Panics
    /// Panics if sizes are not powers of two or the cache is smaller than a
    /// block.
    pub fn new(cfg: EcacheConfig) -> Ecache {
        cfg.validate();
        Ecache {
            tags: vec![None; cfg.num_blocks() as usize],
            seen_blocks: HashSet::new(),
            cfg,
            stats: CacheStats::new(),
        }
    }

    /// The MIPS-X board configuration.
    pub fn mipsx() -> Ecache {
        Ecache::new(EcacheConfig::mipsx())
    }

    /// The cache's configuration.
    pub fn config(&self) -> EcacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (the contents stay warm).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Invalidate all blocks (cold start — miss classification restarts
    /// too).
    pub fn invalidate_all(&mut self) {
        // Every tag ever written belongs to a block in `seen_blocks`
        // (insert and tag-write happen together in `access`), so when few
        // blocks were touched, clearing just their frames restores the
        // cold state without sweeping the full tag array — which for the
        // ideal-memory configurations spans millions of frames and would
        // dominate `Machine::reset_with`.
        if self.seen_blocks.len() < self.tags.len() / 8 {
            let n = self.cfg.num_blocks();
            for &b in &self.seen_blocks {
                self.tags[(b % n) as usize] = None;
            }
        } else {
            self.tags.fill(None);
        }
        self.seen_blocks.clear();
    }

    #[inline]
    fn index_and_tag(&self, addr: u32) -> (usize, u32) {
        let block = addr / self.cfg.block_words;
        (
            (block % self.cfg.num_blocks()) as usize,
            block / self.cfg.num_blocks(),
        )
    }

    /// Whether `addr` currently hits.
    pub fn probe(&self, addr: u32) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        let (index, tag) = self.index_and_tag(addr);
        self.tags[index] == Some(tag)
    }

    /// Read a word through the cache.
    ///
    /// Returns `(data, extra_cycles)` where `extra_cycles` is the stall the
    /// processor pays beyond the base MEM cycle — zero on a hit, the
    /// late-miss retry loop on a miss.
    pub fn read(&mut self, addr: u32, mem: &mut MainMemory) -> (u32, u32) {
        if !self.cfg.enabled {
            // A disabled cache retains nothing: every read is compulsory.
            let extra = self.cfg.late_miss_overhead + mem.latency_cycles;
            self.stats.record_miss(extra as u64, 1);
            self.stats.record_miss_cause(MissCause::Cold);
            return (mem.read(addr), extra);
        }
        let (index, tag) = self.index_and_tag(addr);
        if self.tags[index] == Some(tag) {
            self.stats.record_hit();
            (mem.read(addr), 0)
        } else {
            let extra = self.cfg.late_miss_overhead + mem.latency_cycles;
            self.tags[index] = Some(tag);
            self.stats
                .record_miss(extra as u64, self.cfg.block_words as u64);
            let cause = if self.seen_blocks.insert(addr / self.cfg.block_words) {
                MissCause::Cold
            } else {
                MissCause::Conflict
            };
            self.stats.record_miss_cause(cause);
            (mem.read(addr), extra)
        }
    }

    /// Write a word through the cache (write-through, no write-allocate,
    /// buffered — no processor stall).
    ///
    /// Returns the extra stall cycles, always zero in this model: the write
    /// buffer absorbs the main-memory access, as in the write-through
    /// machines surveyed by Smith (the paper's reference [15]).
    pub fn write(&mut self, addr: u32, word: u32, mem: &mut MainMemory) -> u32 {
        // Write-through updates memory; if the block is resident it stays
        // valid (memory and cache agree because reads pass through).
        mem.write(addr, word);
        0
    }

    /// `(allocated frames, total frames)` — the direct-mapped cache's
    /// occupancy.
    pub fn occupancy(&self) -> (u32, u32) {
        let allocated = self.tags.iter().filter(|t| t.is_some()).count() as u32;
        (allocated, self.cfg.num_blocks())
    }

    /// One-line occupancy summary.
    pub fn occupancy_report(&self) -> String {
        let (allocated, total) = self.occupancy();
        format!(
            "ecache occupancy: {allocated}/{total} frames allocated ({:.1}%)",
            allocated as f64 * 100.0 / total as f64
        )
    }
}

impl Default for Ecache {
    fn default() -> Ecache {
        Ecache::mipsx()
    }
}

/// Plain-data image of an [`Ecache`]'s mutable state (tags,
/// miss-classification history, statistics) for checkpointing. The
/// configuration is not part of the state — the owner restores into a
/// cache built with the identical [`EcacheConfig`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EcacheState {
    /// Tag per direct-mapped frame.
    pub tags: Vec<Option<u32>>,
    /// Block addresses ever read, sorted ascending (deterministic
    /// encoding of the same cache state).
    pub seen_blocks: Vec<u32>,
    /// Accumulated statistics.
    pub stats: CacheStats,
}

impl Ecache {
    /// Capture the cache's mutable state for a checkpoint.
    pub fn snapshot_state(&self) -> EcacheState {
        let mut seen_blocks: Vec<u32> = self.seen_blocks.iter().copied().collect();
        seen_blocks.sort_unstable();
        EcacheState {
            tags: self.tags.clone(),
            seen_blocks,
            stats: self.stats,
        }
    }

    /// Overwrite the cache's mutable state from a checkpoint taken from a
    /// cache with the same configuration. Fails (leaving the cache
    /// untouched) if the frame count does not match this organization.
    pub fn restore_state(&mut self, state: &EcacheState) -> Result<(), String> {
        if state.tags.len() != self.tags.len() {
            return Err(format!(
                "ecache state has {} frames, organization needs {}",
                state.tags.len(),
                self.tags.len()
            ));
        }
        self.tags.copy_from_slice(&state.tags);
        self.seen_blocks = state.seen_blocks.iter().copied().collect();
        self.stats = state.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Ecache, MainMemory) {
        let cache = Ecache::new(EcacheConfig {
            size_words: 64,
            block_words: 4,
            late_miss_overhead: 1,
            enabled: true,
        });
        (cache, MainMemory::with_latency(5))
    }

    #[test]
    fn cold_miss_then_hit() {
        let (mut c, mut m) = small();
        m.write(10, 99);
        let (v, extra) = c.read(10, &mut m);
        assert_eq!(v, 99);
        assert_eq!(extra, 6); // 1 late-miss + 5 memory
        let (v, extra) = c.read(10, &mut m);
        assert_eq!(v, 99);
        assert_eq!(extra, 0);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn block_granularity() {
        let (mut c, mut m) = small();
        let (_, miss) = c.read(8, &mut m);
        assert!(miss > 0);
        // Same 4-word block: 8..12 all hit now.
        for a in 9..12 {
            let (_, extra) = c.read(a, &mut m);
            assert_eq!(extra, 0, "address {a} should hit");
        }
        // Next block misses.
        let (_, extra) = c.read(12, &mut m);
        assert!(extra > 0);
    }

    #[test]
    fn conflicting_blocks_evict() {
        let (mut c, mut m) = small();
        // 64-word cache, 4-word blocks -> 16 frames; addresses 0 and 64
        // share frame 0.
        let (_, m1) = c.read(0, &mut m);
        let (_, m2) = c.read(64, &mut m);
        let (_, m3) = c.read(0, &mut m);
        assert!(m1 > 0 && m2 > 0 && m3 > 0, "conflict misses expected");
    }

    #[test]
    fn write_through_keeps_consistency() {
        let (mut c, mut m) = small();
        let _ = c.read(20, &mut m); // allocate block
        let stall = c.write(20, 1234, &mut m);
        assert_eq!(stall, 0);
        let (v, extra) = c.read(20, &mut m);
        assert_eq!(v, 1234);
        assert_eq!(extra, 0); // still resident
        assert_eq!(m.peek(20), 1234); // memory updated immediately
    }

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = Ecache::new(EcacheConfig {
            enabled: false,
            ..EcacheConfig::mipsx()
        });
        let mut m = MainMemory::with_latency(3);
        let (_, e1) = c.read(5, &mut m);
        let (_, e2) = c.read(5, &mut m);
        assert_eq!(e1, 4);
        assert_eq!(e2, 4);
        assert!(!c.probe(5));
    }

    #[test]
    fn probe_does_not_touch_stats() {
        let (mut c, mut m) = small();
        let _ = c.read(0, &mut m);
        let before = *c.stats();
        assert!(c.probe(0));
        assert!(!c.probe(1000));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn invalidate_all_forces_cold() {
        let (mut c, mut m) = small();
        let _ = c.read(0, &mut m);
        c.invalidate_all();
        let (_, extra) = c.read(0, &mut m);
        assert!(extra > 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_config_panics() {
        let _ = Ecache::new(EcacheConfig {
            size_words: 60,
            ..EcacheConfig::mipsx()
        });
    }
}
