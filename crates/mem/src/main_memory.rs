//! Main memory behind the external cache.

use std::collections::HashMap;

/// Words per allocation page of the sparse store (must be a power of two).
const PAGE_WORDS: u32 = 4096;

/// A sparse, word-addressed main memory.
///
/// The full 32-bit word-address space is backed lazily by 4K-word pages, so
/// programs can scatter code, stacks, and the system-space exception vector
/// without preallocating gigabytes. Uninitialized words read as zero (which
/// decodes to a harmless `ld r0, 0(r0)`).
///
/// `latency_cycles` is the number of processor cycles a fetch spends in main
/// memory once the Ecache has detected a miss — each of those cycles is one
/// trip around the late-miss retry loop.
#[derive(Clone, Debug)]
pub struct MainMemory {
    pages: HashMap<u32, Box<[u32]>>,
    /// Cycles per access once an Ecache miss is detected.
    pub latency_cycles: u32,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Default main-memory latency in processor cycles.
    ///
    /// The paper sized the Ecache so that *"completing a fetch in 50 ns would
    /// be tight"* — i.e. the Ecache itself answers within the cycle. DRAM of
    /// the era behind it ran around 5 processor cycles; the experiment
    /// harness sweeps this.
    pub const DEFAULT_LATENCY: u32 = 5;

    /// An empty memory with [`MainMemory::DEFAULT_LATENCY`].
    pub fn new() -> MainMemory {
        MainMemory::with_latency(Self::DEFAULT_LATENCY)
    }

    /// An empty memory with an explicit access latency.
    pub fn with_latency(latency_cycles: u32) -> MainMemory {
        MainMemory {
            pages: HashMap::new(),
            latency_cycles,
            reads: 0,
            writes: 0,
        }
    }

    /// Read the word at `addr` (word address). Unwritten words are zero.
    pub fn read(&mut self, addr: u32) -> u32 {
        self.reads += 1;
        self.peek(addr)
    }

    /// Write the word at `addr`.
    pub fn write(&mut self, addr: u32, word: u32) {
        self.writes += 1;
        let page = self
            .pages
            .entry(addr / PAGE_WORDS)
            .or_insert_with(|| vec![0u32; PAGE_WORDS as usize].into_boxed_slice());
        page[(addr % PAGE_WORDS) as usize] = word;
    }

    /// Read without counting as an access (debug/verification use).
    pub fn peek(&self, addr: u32) -> u32 {
        self.pages
            .get(&(addr / PAGE_WORDS))
            .map_or(0, |p| p[(addr % PAGE_WORDS) as usize])
    }

    /// Bulk-load a slice of words starting at `origin`.
    pub fn load(&mut self, origin: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.write(origin + i as u32, w);
        }
    }

    /// Number of read accesses served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of write accesses served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of 4K-word pages currently allocated.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reset to an empty memory with a new latency.
    ///
    /// Resident pages are zeroed in place rather than dropped: sweep
    /// workers reset thousands of machines back-to-back and the page boxes
    /// are the only sizable allocation here, so keeping them turns each
    /// reset into a handful of `memset`s.
    pub fn reset(&mut self, latency_cycles: u32) {
        for page in self.pages.values_mut() {
            page.fill(0);
        }
        self.latency_cycles = latency_cycles;
        self.reads = 0;
        self.writes = 0;
    }
}

impl Default for MainMemory {
    fn default() -> MainMemory {
        MainMemory::new()
    }
}

/// Plain-data image of a [`MainMemory`] for checkpointing: the resident
/// pages (sorted by page number so the same memory always encodes to the
/// same bytes), the configured latency, and the access counters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MainMemoryState {
    /// Cycles per access once an Ecache miss is detected.
    pub latency_cycles: u32,
    /// Read accesses served so far.
    pub reads: u64,
    /// Write accesses served so far.
    pub writes: u64,
    /// `(page number, page contents)` sorted ascending by page number;
    /// every page is exactly 4096 words.
    pub pages: Vec<(u32, Vec<u32>)>,
}

impl MainMemory {
    /// Capture the memory's full state for a checkpoint.
    pub fn snapshot_state(&self) -> MainMemoryState {
        let mut pages: Vec<(u32, Vec<u32>)> =
            self.pages.iter().map(|(&n, p)| (n, p.to_vec())).collect();
        pages.sort_unstable_by_key(|(n, _)| *n);
        MainMemoryState {
            latency_cycles: self.latency_cycles,
            reads: self.reads,
            writes: self.writes,
            pages,
        }
    }

    /// Replace the memory's full state from a checkpoint. Fails (leaving
    /// the memory untouched) if any page is not exactly 4096 words.
    pub fn restore_state(&mut self, state: &MainMemoryState) -> Result<(), String> {
        for (n, words) in &state.pages {
            if words.len() != PAGE_WORDS as usize {
                return Err(format!(
                    "memory page {n} has {} words, expected {PAGE_WORDS}",
                    words.len()
                ));
            }
        }
        self.latency_cycles = state.latency_cycles;
        self.reads = state.reads;
        self.writes = state.writes;
        self.pages = state
            .pages
            .iter()
            .map(|(n, words)| (*n, words.clone().into_boxed_slice()))
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mut m = MainMemory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(u32::MAX), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = MainMemory::new();
        m.write(1234, 0xDEAD_BEEF);
        assert_eq!(m.read(1234), 0xDEAD_BEEF);
        assert_eq!(m.read(1235), 0);
    }

    #[test]
    fn pages_allocate_lazily() {
        let mut m = MainMemory::new();
        assert_eq!(m.resident_pages(), 0);
        m.write(0, 1);
        m.write(PAGE_WORDS, 2); // second page
        m.write(PAGE_WORDS + 1, 3); // same page
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn load_places_words() {
        let mut m = MainMemory::new();
        m.load(100, &[10, 20, 30]);
        assert_eq!(m.peek(100), 10);
        assert_eq!(m.peek(102), 30);
    }

    #[test]
    fn access_counters() {
        let mut m = MainMemory::new();
        m.write(0, 1);
        let _ = m.read(0);
        let _ = m.peek(0); // not counted
        assert_eq!(m.reads(), 1);
        assert_eq!(m.writes(), 1);
    }

    #[test]
    fn cross_page_boundary() {
        let mut m = MainMemory::new();
        m.write(PAGE_WORDS - 1, 7);
        m.write(PAGE_WORDS, 8);
        assert_eq!(m.peek(PAGE_WORDS - 1), 7);
        assert_eq!(m.peek(PAGE_WORDS), 8);
    }
}
