//! # mipsx-mem — the MIPS-X memory hierarchy
//!
//! MIPS-X is memory-bandwidth limited by its package pins: *"At the projected
//! clock frequency of 20 MHz it is very difficult to satisfy instruction and
//! data fetch requirements across the available package pins."* The paper's
//! answer is a two-level hierarchy, fully modeled here:
//!
//! - [`Icache`]: the on-chip 512-word instruction cache — 8-way
//!   set-associative, 4 sets (rows), 16-word blocks, **sub-block placement**
//!   with one valid bit per word (512 valid bits, 32 tags), a 2-cycle miss
//!   service and a **double-word fetch-back** that almost halves the miss
//!   ratio. Every organization parameter is configurable so the paper's
//!   design sweep (block size, penalty, single vs double fetch) can be rerun.
//! - [`Ecache`]: the 64K-word external cache with the **late-miss protocol**:
//!   the hit/miss answer arrives a cycle after the access, and on a miss the
//!   processor *"would effectively go back and re-execute φ2 of MEM to try
//!   the access again"* until the data returns.
//! - [`MainMemory`]: a sparse word-addressed store behind the Ecache.
//!
//! The caches are usable in two modes: plugged into the cycle-accurate core
//! (`mipsx-core`), or driven directly by an address trace for the cache
//! organization experiments (see [`Icache::simulate_trace`]).

mod ecache;
mod icache;
mod main_memory;
mod stats;

pub use ecache::{Ecache, EcacheConfig, EcacheState};
pub use icache::{FetchOutcome, Icache, IcacheConfig, IcacheState, Replacement, TraceResult};
pub use main_memory::{MainMemory, MainMemoryState};
pub use stats::{CacheStats, MissCause};
