//! Every kernel must produce its known answer on the cycle-accurate core —
//! both naively lowered and fully reorganized, under every Table 1 scheme.

use mipsx_core::{InterlockPolicy, Machine, MachineConfig};
use mipsx_isa::Reg;
use mipsx_reorg::{BranchScheme, Reorganizer};
use mipsx_workloads::kernels::{all_kernels, Check};
use mipsx_workloads::synth::{generate, SynthConfig};

fn run_checked(program: &mipsx_asm::Program, slots: usize, checks: &[Check], label: &str) -> u64 {
    let mut m = Machine::new(MachineConfig {
        branch_delay_slots: slots,
        interlock: InterlockPolicy::Detect,
        ..MachineConfig::default()
    });
    m.load_program(program);
    let stats = m
        .run(5_000_000)
        .unwrap_or_else(|e| panic!("{label}: execution failed: {e}"));
    for check in checks {
        match *check {
            Check::Reg { reg, value } => {
                assert_eq!(
                    m.cpu().reg(Reg::new(reg)),
                    value,
                    "{label}: r{reg} mismatch"
                );
            }
            Check::MemWord { addr, value } => {
                assert_eq!(m.read_word(addr), value, "{label}: mem[{addr:#x}] mismatch");
            }
            Check::MemSortedAscending { base, len } => {
                let words: Vec<u32> = (base..base + len).map(|a| m.read_word(a)).collect();
                let mut sorted = words.clone();
                sorted.sort_unstable();
                assert_eq!(words, sorted, "{label}: region not sorted");
            }
        }
    }
    stats.cycles
}

#[test]
fn kernels_correct_under_all_schemes() {
    for kernel in all_kernels() {
        for scheme in BranchScheme::table1() {
            let r = Reorganizer::new(scheme);
            let (naive, _) = r.lower_naive(&kernel.raw).expect("naive lowering");
            let (opt, _) = r.reorganize(&kernel.raw).expect("reorganization");
            run_checked(
                &naive,
                scheme.slots,
                &kernel.checks,
                &format!("{} naive {scheme}", kernel.name),
            );
            run_checked(
                &opt,
                scheme.slots,
                &kernel.checks,
                &format!("{} reorg {scheme}", kernel.name),
            );
        }
    }
}

#[test]
fn reorganizer_speeds_up_kernels_on_average() {
    let scheme = BranchScheme::mipsx();
    let r = Reorganizer::new(scheme);
    let mut naive_total = 0u64;
    let mut opt_total = 0u64;
    for kernel in all_kernels() {
        let (naive, _) = r.lower_naive(&kernel.raw).unwrap();
        let (opt, _) = r.reorganize(&kernel.raw).unwrap();
        naive_total += run_checked(&naive, 2, &kernel.checks, kernel.name);
        opt_total += run_checked(&opt, 2, &kernel.checks, kernel.name);
    }
    assert!(
        opt_total < naive_total,
        "reorganized suite must be faster: {opt_total} vs {naive_total}"
    );
}

#[test]
fn synthetic_programs_run_to_completion_under_all_schemes() {
    for seed in [1u64, 9, 23] {
        for cfg in [SynthConfig::tiny(seed), SynthConfig::pascal_like(seed)] {
            let synth = generate(cfg);
            for scheme in BranchScheme::table1() {
                let r = Reorganizer::new(scheme);
                let (naive, _) = r.lower_naive(&synth.raw).expect("naive");
                let (opt, _) = r.reorganize(&synth.raw).expect("reorg");
                let mut a = Machine::new(MachineConfig {
                    branch_delay_slots: scheme.slots,
                    interlock: InterlockPolicy::Detect,
                    ..MachineConfig::default()
                });
                a.load_program(&naive);
                let sa = a.run(20_000_000).expect("naive runs");
                let mut b = Machine::new(MachineConfig {
                    branch_delay_slots: scheme.slots,
                    interlock: InterlockPolicy::Detect,
                    ..MachineConfig::default()
                });
                b.load_program(&opt);
                let sb = b.run(20_000_000).expect("reorg runs");
                // Architectural equivalence of the synthetic program's state.
                let mut ra = a.cpu().regs_snapshot();
                let mut rb = b.cpu().regs_snapshot();
                ra[Reg::LINK.index()] = 0;
                rb[Reg::LINK.index()] = 0;
                assert_eq!(ra, rb, "seed {seed} diverged under {scheme}");
                assert!(
                    sb.cycles <= sa.cycles,
                    "reorg slower for seed {seed} {scheme}"
                );
            }
        }
    }
}

#[test]
fn lisp_like_has_higher_nop_fraction_than_pascal_like() {
    let scheme = BranchScheme::mipsx();
    let r = Reorganizer::new(scheme);
    let run_nop_fraction = |cfg: SynthConfig| {
        let synth = generate(cfg);
        let (opt, _) = r.reorganize(&synth.raw).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load_program(&opt);
        let stats = m.run(50_000_000).expect("runs");
        stats.nop_fraction()
    };
    let mut pascal_avg = 0.0;
    let mut lisp_avg = 0.0;
    let seeds = [3u64, 17, 41];
    for &s in &seeds {
        pascal_avg += run_nop_fraction(SynthConfig::pascal_like(s));
        lisp_avg += run_nop_fraction(SynthConfig::lisp_like(s));
    }
    pascal_avg /= seeds.len() as f64;
    lisp_avg /= seeds.len() as f64;
    assert!(
        lisp_avg > pascal_avg,
        "lisp {lisp_avg:.3} should out-nop pascal {pascal_avg:.3}"
    );
}
