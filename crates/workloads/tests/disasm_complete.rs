//! Disassembler completeness over everything the workload layer can emit.
//!
//! Every instruction word produced by the kernel suite and the synthetic
//! generators (after scheduling through the reorganizer) must disassemble
//! to a real mnemonic — never fall through to the `.word` data escape —
//! and must survive a decode → encode → decode round trip unchanged.

use mipsx_asm::disassemble;
use mipsx_isa::Instr;
use mipsx_reorg::{BranchScheme, RawProgram, Reorganizer};
use mipsx_workloads::kernels::all_kernels;
use mipsx_workloads::synth::{generate, SynthConfig};

fn check_program(label: &str, raw: &RawProgram) {
    let reorg = Reorganizer::new(BranchScheme::mipsx());
    let (program, _) = reorg.reorganize(raw).expect("reorganizes");
    // One decode pass via the shared side-car table — the same accessor
    // the production consumers use.
    for (addr, entry) in program.decoded().iter() {
        assert!(
            !matches!(entry.instr, Instr::Illegal(_)),
            "{label}: word at {addr:#07x} ({:#010x}) decodes to the .word escape",
            entry.word
        );
        assert_eq!(
            Instr::decode(entry.instr.encode()),
            entry.instr,
            "{label}: word at {addr:#07x} ({:#010x}) does not round-trip",
            entry.word
        );
    }
    for line in disassemble(program.origin, &program.words) {
        assert!(
            !line.contains(".word"),
            "{label}: disassembly fell back to data: {line}"
        );
    }
}

#[test]
fn kernel_suite_disassembles_completely() {
    let kernels = all_kernels();
    assert!(!kernels.is_empty());
    for k in &kernels {
        check_program(k.name, &k.raw);
    }
}

#[test]
fn synthetic_programs_disassemble_completely() {
    for seed in [11u64, 47, 101, 233, 509] {
        check_program(
            &format!("pascal-like seed {seed}"),
            &generate(SynthConfig::pascal_like(seed)).raw,
        );
        check_program(
            &format!("lisp-like seed {seed}"),
            &generate(SynthConfig::lisp_like(seed)).raw,
        );
    }
}
