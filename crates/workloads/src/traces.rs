//! Synthetic instruction-address traces for the trace-driven cache
//! studies.
//!
//! The MIPS-X cache work was trace-driven: *"The compiler/simulator system
//! generated instruction traces that we used to gather cache statistics."*
//! This generator produces address streams with program-shaped structure —
//! short loops iterated a few times, sequential gluing code, and occasional
//! far calls — whose single-word-fetch miss ratio on the 512-word cache
//! lands in the paper's ">20 %" regime for medium programs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trace-generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// RNG seed.
    pub seed: u64,
    /// Static code size in words (the program's instruction footprint).
    pub code_words: u32,
    /// Number of fetches to emit.
    pub length: usize,
    /// Mean loop body length in words.
    pub mean_loop_len: u32,
    /// Mean loop trip count (how often a body repeats before moving on —
    /// the knob that trades sequential-fresh fetches against in-loop hits).
    pub mean_trips: u32,
    /// Probability of a far call after each loop (jump to another code
    /// region and return).
    pub p_call: f64,
}

impl TraceConfig {
    /// A medium program (tens of KB of code): the regime where the paper's
    /// first cache simulations saw >20 % misses with single-word fetch.
    pub fn medium(seed: u64) -> TraceConfig {
        TraceConfig {
            seed,
            code_words: 12 * 1024,
            length: 200_000,
            mean_loop_len: 10,
            mean_trips: 5,
            p_call: 0.15,
        }
    }

    /// A large program (the 50–270 KB static-size class of the paper's
    /// final benchmarks): more code, more reuse inside loops.
    pub fn large(seed: u64) -> TraceConfig {
        TraceConfig {
            seed,
            code_words: 64 * 1024,
            length: 400_000,
            mean_loop_len: 11,
            mean_trips: 5,
            p_call: 0.14,
        }
    }
}

/// Generate an instruction-address trace.
pub fn instruction_trace(cfg: TraceConfig) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut trace = Vec::with_capacity(cfg.length);
    let mut pc: u32 = 0;
    while trace.len() < cfg.length {
        // One loop: body of `len` words executed `trips` times.
        let len = rng.gen_range(2..=cfg.mean_loop_len * 2).max(2);
        let trips = rng.gen_range(1..=cfg.mean_trips * 2).max(1);
        for _ in 0..trips {
            for w in 0..len {
                trace.push((pc + w) % cfg.code_words);
                if trace.len() >= cfg.length {
                    return trace;
                }
            }
        }
        pc = (pc + len) % cfg.code_words;
        // Occasionally call a routine somewhere else in the code.
        if rng.gen_bool(cfg.p_call) {
            let callee = rng.gen_range(0..cfg.code_words);
            let body = rng.gen_range(4..=cfg.mean_loop_len * 3);
            for w in 0..body {
                trace.push((callee + w) % cfg.code_words);
                if trace.len() >= cfg.length {
                    return trace;
                }
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_requested_length() {
        let t = instruction_trace(TraceConfig {
            length: 5000,
            ..TraceConfig::medium(1)
        });
        assert_eq!(t.len(), 5000);
    }

    #[test]
    fn addresses_stay_in_code() {
        let cfg = TraceConfig {
            length: 10_000,
            ..TraceConfig::medium(2)
        };
        for &a in &instruction_trace(cfg) {
            assert!(a < cfg.code_words);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = instruction_trace(TraceConfig::medium(3));
        let b = instruction_trace(TraceConfig::medium(3));
        assert_eq!(a, b);
        let c = instruction_trace(TraceConfig::medium(4));
        assert_ne!(a, c);
    }

    #[test]
    fn traces_have_locality() {
        // Repeated addresses must dominate: a loop-structured trace revisits
        // most fetches.
        let t = instruction_trace(TraceConfig {
            length: 20_000,
            ..TraceConfig::medium(5)
        });
        let unique: std::collections::HashSet<u32> = t.iter().copied().collect();
        assert!(unique.len() * 2 < t.len(), "trace should revisit addresses");
    }
}
