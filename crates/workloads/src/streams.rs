//! Data-streaming workloads for the external-cache experiments.
//!
//! The paper's benchmarks mostly fit the 64K-word Ecache (*"static code
//! sizes in the range of 50 KBytes to 270 KBytes ... most of the benchmarks
//! fit entirely"*), so the Ecache's contribution has to be isolated with a
//! workload whose *data* working set is a free parameter. [`streaming`]
//! builds exactly that: a read-modify-write pass over a configurable number
//! of words, repeated a configurable number of times, so the working set can
//! be swept across the cache boundary.

use mipsx_isa::{ComputeOp, Cond, Instr, Reg};
use mipsx_reorg::{RawBlock, RawProgram, Terminator};

/// A data-streaming loop: `reps` passes of a read-modify-write sweep over
/// `words` words of data starting at word address 8192.
pub fn streaming(words: u32, reps: u32) -> RawProgram {
    fn r(n: u8) -> Reg {
        Reg::new(n)
    }
    let li = |rd: u8, imm: i32| Instr::Addi {
        rs1: Reg::ZERO,
        rd: r(rd),
        imm,
    };
    let addi = |rd: u8, rs1: u8, imm: i32| Instr::Addi {
        rs1: r(rs1),
        rd: r(rd),
        imm,
    };
    RawProgram::new(
        vec![
            RawBlock::new(vec![li(9, reps as i32)]),
            // b1: start one rep.
            RawBlock::new(vec![li(10, 8192), li(1, words as i32)]),
            // b2: streaming read-modify-write: x = a[i]; a[i] = x + 1.
            RawBlock::new(vec![
                Instr::Ld {
                    rs1: r(10),
                    rd: r(5),
                    offset: 0,
                },
                addi(10, 10, 1),
                Instr::Compute {
                    op: ComputeOp::AddU,
                    rs1: r(5),
                    rs2: r(9),
                    rd: r(6),
                    shamt: 0,
                },
                Instr::St {
                    rs1: r(10),
                    rsrc: r(6),
                    offset: -1,
                },
                addi(1, 1, -1),
            ]),
            // b3: next rep.
            RawBlock::new(vec![addi(9, 9, -1)]),
            RawBlock::default(),
        ],
        vec![
            Terminator::Jump(1),
            Terminator::Jump(2),
            Terminator::Branch {
                cond: Cond::Gt,
                rs1: r(1),
                rs2: Reg::ZERO,
                taken: 2,
                fall: 3,
                p_taken: 0.99,
            },
            Terminator::Branch {
                cond: Cond::Gt,
                rs1: r(9),
                rs2: Reg::ZERO,
                taken: 1,
                fall: 4,
                p_taken: 0.7,
            },
            Terminator::Halt,
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_validates_and_scales() {
        streaming(64, 2).validate();
        // Same shape regardless of parameters: 5 blocks, 5 terminators.
        assert_eq!(streaming(1024, 4).len(), 5);
    }
}
