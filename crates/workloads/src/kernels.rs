//! Hand-written benchmark kernels.
//!
//! Each kernel is a complete [`RawProgram`] with a known answer, exercising
//! a distinct mix of behaviours: tight loops, deep recursion with a manual
//! stack, nested loops with stores (sieve), memory streaming (memcpy),
//! pointer chasing with load-load chains (the Lisp car/cdr pattern),
//! data-dependent branching (bubble sort), and multiply-step sequences
//! through the MD register (dot product).

use mipsx_isa::{ComputeOp, Cond, Instr, Reg};
use mipsx_reorg::{RawBlock, RawProgram, Terminator};

/// A post-run correctness condition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Check {
    /// Register `reg` must hold `value`.
    Reg { reg: u8, value: u32 },
    /// Memory word `addr` must hold `value`.
    MemWord { addr: u32, value: u32 },
    /// `len` words from `base` must be ascending.
    MemSortedAscending { base: u32, len: u32 },
}

/// A named kernel with its expected results.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Kernel name (stable, used in reports).
    pub name: &'static str,
    /// The unscheduled program.
    pub raw: RawProgram,
    /// Conditions a correct run must satisfy.
    pub checks: Vec<Check>,
    /// Rough workload class for the experiment harness.
    pub lisp_like: bool,
}

// --- tiny instruction helpers -------------------------------------------

fn r(n: u8) -> Reg {
    Reg::new(n)
}

fn li(rd: u8, imm: i32) -> Instr {
    Instr::Addi {
        rs1: Reg::ZERO,
        rd: r(rd),
        imm,
    }
}

fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
    Instr::Addi {
        rs1: r(rs1),
        rd: r(rd),
        imm,
    }
}

fn addu(rd: u8, rs1: u8, rs2: u8) -> Instr {
    Instr::Compute {
        op: ComputeOp::AddU,
        rs1: r(rs1),
        rs2: r(rs2),
        rd: r(rd),
        shamt: 0,
    }
}

fn mv(rd: u8, rs: u8) -> Instr {
    addu(rd, rs, 0)
}

fn ld(rd: u8, base: u8, off: i32) -> Instr {
    Instr::Ld {
        rs1: r(base),
        rd: r(rd),
        offset: off,
    }
}

fn st(rsrc: u8, base: u8, off: i32) -> Instr {
    Instr::St {
        rs1: r(base),
        rsrc: r(rsrc),
        offset: off,
    }
}

fn mstep(rd: u8, rs1: u8, rs2: u8) -> Instr {
    Instr::Compute {
        op: ComputeOp::Mstep,
        rs1: r(rs1),
        rs2: r(rs2),
        rd: r(rd),
        shamt: 0,
    }
}

fn movtos_md(rs: u8) -> Instr {
    Instr::Movtos {
        sreg: mipsx_isa::SpecialReg::Md,
        rs: r(rs),
    }
}

fn branch(cond: Cond, rs1: u8, rs2: u8, taken: usize, fall: usize, p: f64) -> Terminator {
    Terminator::Branch {
        cond,
        rs1: r(rs1),
        rs2: r(rs2),
        taken,
        fall,
        p_taken: p,
    }
}

// --- the kernels ---------------------------------------------------------

/// Sum the integers `n..=1` in a tight loop. `r2 == n(n+1)/2`.
pub fn sum_to_n(n: u32) -> Kernel {
    let raw = RawProgram::new(
        vec![
            RawBlock::new(vec![li(1, n as i32), li(2, 0)]),
            RawBlock::new(vec![addu(2, 2, 1), addi(1, 1, -1)]),
            RawBlock::default(),
        ],
        vec![
            Terminator::Jump(1),
            branch(Cond::Gt, 1, 0, 1, 2, 0.9),
            Terminator::Halt,
        ],
    );
    Kernel {
        name: "sum_to_n",
        raw,
        checks: vec![Check::Reg {
            reg: 2,
            value: n * (n + 1) / 2,
        }],
        lisp_like: false,
    }
}

/// Doubly recursive Fibonacci with a manual stack frame (link and argument
/// spilled to memory). `r2 == fib(n)`.
pub fn fib_recursive(n: u32) -> Kernel {
    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    let raw = RawProgram::new(
        vec![
            // b0: main — stack at 3000, call fib(n).
            RawBlock::new(vec![li(30, 3000), li(1, n as i32)]),
            // b1: done.
            RawBlock::default(),
            // b2: fib entry — if n >= 2 recurse.
            RawBlock::new(vec![li(3, 2)]),
            // b3: base case — return n.
            RawBlock::new(vec![mv(2, 1)]),
            // b4: recursive case — push link and n, call fib(n-1).
            RawBlock::new(vec![
                st(31, 30, 0),
                st(1, 30, 1),
                addi(30, 30, 3),
                addi(1, 1, -1),
            ]),
            // b5: save fib(n-1), call fib(n-2).
            RawBlock::new(vec![st(2, 30, -1), ld(1, 30, -2), addi(1, 1, -2)]),
            // b6: combine, pop frame, return.
            RawBlock::new(vec![
                ld(4, 30, -1),
                addu(2, 2, 4),
                ld(31, 30, -3),
                addi(30, 30, -3),
            ]),
        ],
        vec![
            Terminator::Call {
                target: 2,
                link: Reg::LINK,
                ret_to: 1,
            },
            Terminator::Halt,
            branch(Cond::Ge, 1, 3, 4, 3, 0.7),
            Terminator::Return { link: Reg::LINK },
            Terminator::Call {
                target: 2,
                link: Reg::LINK,
                ret_to: 5,
            },
            Terminator::Call {
                target: 2,
                link: Reg::LINK,
                ret_to: 6,
            },
            Terminator::Return { link: Reg::LINK },
        ],
    );
    Kernel {
        name: "fib_recursive",
        raw,
        checks: vec![Check::Reg {
            reg: 2,
            value: fib(n as u64) as u32,
        }],
        lisp_like: false,
    }
}

/// Sieve of Eratosthenes up to `limit` (flags at 2000). `r2` counts primes.
pub fn sieve(limit: u32) -> Kernel {
    let expected = {
        let mut flags = vec![false; limit as usize];
        let mut count = 0u32;
        for i in 2..limit as usize {
            if !flags[i] {
                count += 1;
                let mut j = i + i;
                while j < limit as usize {
                    flags[j] = true;
                    j += i;
                }
            }
        }
        count
    };
    let raw = RawProgram::new(
        vec![
            // b0: init.
            RawBlock::new(vec![li(10, 2000), li(4, limit as i32), li(2, 0), li(1, 2)]),
            // b1: outer head — composite?
            RawBlock::new(vec![addu(5, 1, 10), ld(6, 5, 0)]),
            // b2: i is prime — count it, j = 2i.
            RawBlock::new(vec![addi(2, 2, 1), addu(3, 1, 1)]),
            // b3: inner head — j < limit?
            RawBlock::default(),
            // b4: mark flags[j], j += i.
            RawBlock::new(vec![addu(5, 3, 10), li(7, 1), st(7, 5, 0), addu(3, 3, 1)]),
            // b5: outer increment.
            RawBlock::new(vec![addi(1, 1, 1)]),
            // b6: done.
            RawBlock::default(),
        ],
        vec![
            Terminator::Jump(1),
            branch(Cond::Ne, 6, 0, 5, 2, 0.4),
            Terminator::Jump(3),
            branch(Cond::Ge, 3, 4, 5, 4, 0.2),
            Terminator::Jump(3),
            branch(Cond::Lt, 1, 4, 1, 6, 0.95),
            Terminator::Halt,
        ],
    );
    Kernel {
        name: "sieve",
        raw,
        checks: vec![Check::Reg {
            reg: 2,
            value: expected,
        }],
        lisp_like: false,
    }
}

/// Fill a source array (base 2100) and copy it (base 2200).
pub fn memcpy(n: u32) -> Kernel {
    let raw = RawProgram::new(
        vec![
            RawBlock::new(vec![
                li(10, 2100),
                li(11, 2200),
                li(1, n as i32),
                li(2, 0),
                li(5, 7),
                li(13, 13),
            ]),
            // b1: fill src with 7, 20, 33, ...
            RawBlock::new(vec![
                addu(6, 10, 2),
                st(5, 6, 0),
                addu(5, 5, 13),
                addi(2, 2, 1),
            ]),
            // b2: reset index.
            RawBlock::new(vec![li(2, 0)]),
            // b3: copy loop.
            RawBlock::new(vec![
                addu(6, 10, 2),
                ld(7, 6, 0),
                addu(8, 11, 2),
                st(7, 8, 0),
                addi(2, 2, 1),
            ]),
            RawBlock::default(),
        ],
        vec![
            Terminator::Jump(1),
            branch(Cond::Lt, 2, 1, 1, 2, 0.9),
            Terminator::Jump(3),
            branch(Cond::Lt, 2, 1, 3, 4, 0.9),
            Terminator::Halt,
        ],
    );
    let checks = (0..n)
        .step_by((n as usize / 4).max(1))
        .map(|i| Check::MemWord {
            addr: 2200 + i,
            value: 7u32.wrapping_add(13 * i),
        })
        .collect();
    Kernel {
        name: "memcpy",
        raw,
        checks,
        lisp_like: false,
    }
}

/// Build a linked list of `k` cons cells at 2400 ([value, next] pairs) and
/// chase it, summing the values — the Lisp car/cdr pattern, full of
/// load-load interlocks. `r2 == Σ (3i + 1)`.
pub fn list_chase(k: u32) -> Kernel {
    let expected: u32 = (0..k).map(|i| 3 * i + 1).sum();
    let raw = RawProgram::new(
        vec![
            // b0: builder init.
            RawBlock::new(vec![
                li(10, 2400),
                li(1, k as i32),
                li(2, 0),
                li(3, 1),
                li(12, 3),
            ]),
            // b1: build loop — node i at 2400 + 2i.
            RawBlock::new(vec![
                addu(6, 2, 2),
                addu(6, 6, 10),
                st(3, 6, 0),
                addi(7, 6, 2),
                st(7, 6, 1),
                addu(3, 3, 12),
                addi(2, 2, 1),
            ]),
            // b2: terminate last node, start the chase.
            RawBlock::new(vec![
                addi(6, 10, 2 * (k as i32 - 1)),
                st(0, 6, 1),
                mv(4, 10),
                li(2, 0),
            ]),
            // b3: chase — the car/cdr chain.
            RawBlock::new(vec![ld(5, 4, 0), addu(2, 2, 5), ld(4, 4, 1)]),
            RawBlock::default(),
        ],
        vec![
            Terminator::Jump(1),
            branch(Cond::Lt, 2, 1, 1, 2, 0.95),
            Terminator::Jump(3),
            branch(Cond::Ne, 4, 0, 3, 4, 0.95),
            Terminator::Halt,
        ],
    );
    Kernel {
        name: "list_chase",
        raw,
        checks: vec![Check::Reg {
            reg: 2,
            value: expected,
        }],
        lisp_like: true,
    }
}

/// Fill an array with descending values and bubble-sort it ascending
/// (base 2600).
pub fn bubble_sort(n: u32) -> Kernel {
    let raw = RawProgram::new(
        vec![
            // b0: init.
            RawBlock::new(vec![li(10, 2600), li(1, n as i32), li(2, 0), li(5, 100)]),
            // b1: fill with 100, 93, 86, ...
            RawBlock::new(vec![
                addu(6, 10, 2),
                st(5, 6, 0),
                addi(5, 5, -7),
                addi(2, 2, 1),
            ]),
            // b2: pass counter.
            RawBlock::new(vec![li(2, 0)]),
            // b3: outer loop — reset j.
            RawBlock::new(vec![li(3, 0)]),
            // b4: compare neighbours.
            RawBlock::new(vec![addu(6, 10, 3), ld(7, 6, 0), ld(8, 6, 1)]),
            // b5: swap.
            RawBlock::new(vec![st(8, 6, 0), st(7, 6, 1)]),
            // b6: inner increment.
            RawBlock::new(vec![addi(3, 3, 1), addi(9, 1, -1)]),
            // b7: outer increment.
            RawBlock::new(vec![addi(2, 2, 1)]),
            RawBlock::default(),
        ],
        vec![
            Terminator::Jump(1),
            branch(Cond::Lt, 2, 1, 1, 2, 0.9),
            Terminator::Jump(3),
            Terminator::Jump(4),
            branch(Cond::Le, 7, 8, 6, 5, 0.5),
            Terminator::Jump(6),
            branch(Cond::Lt, 3, 9, 4, 7, 0.85),
            branch(Cond::Lt, 2, 1, 3, 8, 0.9),
            Terminator::Halt,
        ],
    );
    Kernel {
        name: "bubble_sort",
        raw,
        checks: vec![Check::MemSortedAscending { base: 2600, len: n }],
        lisp_like: false,
    }
}

/// Dot product of two small vectors using 32-step software multiply
/// through the MD register. `r5` holds the result.
pub fn dot_product(n: u32) -> Kernel {
    let expected: u32 = (0..n).map(|i| (i + 1) * (2 * i + 1)).sum();
    let mut inner = vec![
        addu(6, 10, 2),
        ld(7, 6, 0),
        addu(6, 11, 2),
        ld(8, 6, 0),
        movtos_md(8),
        li(9, 0),
    ];
    for _ in 0..32 {
        inner.push(mstep(9, 7, 9));
    }
    inner.push(addu(5, 5, 9));
    inner.push(addi(2, 2, 1));
    let raw = RawProgram::new(
        vec![
            RawBlock::new(vec![
                li(10, 2800),
                li(11, 2900),
                li(1, n as i32),
                li(2, 0),
                li(3, 1),
                li(4, 1),
            ]),
            // b1: fill a[i] = i+1, b[i] = 2i+1.
            RawBlock::new(vec![
                addu(6, 10, 2),
                st(3, 6, 0),
                addu(6, 11, 2),
                st(4, 6, 0),
                addi(3, 3, 1),
                addi(4, 4, 2),
                addi(2, 2, 1),
            ]),
            // b2: reset for the dot loop.
            RawBlock::new(vec![li(2, 0), li(5, 0)]),
            // b3: multiply-accumulate one element.
            RawBlock::new(inner),
            RawBlock::default(),
        ],
        vec![
            Terminator::Jump(1),
            branch(Cond::Lt, 2, 1, 1, 2, 0.85),
            Terminator::Jump(3),
            branch(Cond::Lt, 2, 1, 3, 4, 0.85),
            Terminator::Halt,
        ],
    );
    Kernel {
        name: "dot_product",
        raw,
        checks: vec![Check::Reg {
            reg: 5,
            value: expected,
        }],
        lisp_like: false,
    }
}

/// Towers of Hanoi: count the moves for `n` discs with a doubly recursive
/// routine (manual stack frames, like `fib_recursive` but with two saved
/// arguments). `r2 == 2^n - 1`.
pub fn hanoi(n: u32) -> Kernel {
    let raw = RawProgram::new(
        vec![
            // b0: main — stack at 3200, r1 = n, r2 = move counter.
            RawBlock::new(vec![li(30, 3200), li(1, n as i32), li(2, 0)]),
            // b1: done.
            RawBlock::default(),
            // b2: hanoi(n) entry — base case n <= 1?
            RawBlock::new(vec![li(3, 1)]),
            // b3: base case — one move.
            RawBlock::new(vec![addi(2, 2, 1)]),
            // b4: recursive: push link and n; hanoi(n-1).
            RawBlock::new(vec![
                st(31, 30, 0),
                st(1, 30, 1),
                addi(30, 30, 2),
                addi(1, 1, -1),
            ]),
            // b5: the middle move, then hanoi(n-1) again.
            RawBlock::new(vec![addi(2, 2, 1), ld(1, 30, -1), addi(1, 1, -1)]),
            // b6: pop frame, return.
            RawBlock::new(vec![ld(31, 30, -2), addi(30, 30, -2)]),
        ],
        vec![
            Terminator::Call {
                target: 2,
                link: Reg::LINK,
                ret_to: 1,
            },
            Terminator::Halt,
            branch(Cond::Gt, 1, 3, 4, 3, 0.7),
            Terminator::Return { link: Reg::LINK },
            Terminator::Call {
                target: 2,
                link: Reg::LINK,
                ret_to: 5,
            },
            Terminator::Call {
                target: 2,
                link: Reg::LINK,
                ret_to: 6,
            },
            Terminator::Return { link: Reg::LINK },
        ],
    );
    Kernel {
        name: "hanoi",
        raw,
        checks: vec![Check::Reg {
            reg: 2,
            value: (1u32 << n) - 1,
        }],
        lisp_like: false,
    }
}

/// Lexicographic compare of two word-strings (bases 3400/3500): build two
/// sequences differing at position `diff`, scan for the first mismatch.
/// `r5` = index of first difference.
pub fn strcmp(len: u32, diff: u32) -> Kernel {
    assert!(diff < len, "difference must be inside the strings");
    let raw = RawProgram::new(
        vec![
            // b0: init.
            RawBlock::new(vec![
                li(10, 3400),
                li(11, 3500),
                li(1, len as i32),
                li(2, 0),
                li(3, 65), // 'A'-ish payload
            ]),
            // b1: fill both strings identically…
            RawBlock::new(vec![
                addu(6, 10, 2),
                st(3, 6, 0),
                addu(6, 11, 2),
                st(3, 6, 0),
                addi(3, 3, 1),
                addi(2, 2, 1),
            ]),
            // b2: …then poke the difference, start the scan.
            RawBlock::new(vec![
                addi(6, 11, diff as i32),
                li(7, 999),
                st(7, 6, 0),
                li(2, 0),
            ]),
            // b3: compare word by word.
            RawBlock::new(vec![
                addu(6, 10, 2),
                ld(7, 6, 0),
                addu(6, 11, 2),
                ld(8, 6, 0),
            ]),
            // b4: equal so far — advance.
            RawBlock::new(vec![addi(2, 2, 1)]),
            // b5: found (or exhausted): record index.
            RawBlock::new(vec![mv(5, 2)]),
        ],
        vec![
            Terminator::Jump(1),
            branch(Cond::Lt, 2, 1, 1, 2, 0.9),
            Terminator::Jump(3),
            branch(Cond::Ne, 7, 8, 5, 4, 0.1),
            branch(Cond::Lt, 2, 1, 3, 5, 0.95),
            Terminator::Halt,
        ],
    );
    Kernel {
        name: "strcmp",
        raw,
        checks: vec![Check::Reg {
            reg: 5,
            value: diff,
        }],
        lisp_like: false,
    }
}

/// The full kernel suite at standard sizes.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        sum_to_n(100),
        fib_recursive(10),
        sieve(60),
        memcpy(48),
        list_chase(32),
        bubble_sort(12),
        dot_product(8),
        hanoi(7),
        strcmp(40, 23),
    ]
}

/// Look a kernel up by its stable name.
pub fn find_kernel(name: &str) -> Option<Kernel> {
    all_kernels().into_iter().find(|k| k.name == name)
}

/// Every kernel's stable name, suite order (for error messages and CLIs).
pub fn kernel_names() -> Vec<&'static str> {
    all_kernels().iter().map(|k| k.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_validate() {
        for k in all_kernels() {
            k.raw.validate();
            assert!(!k.checks.is_empty(), "{} has no checks", k.name);
            assert!(k.raw.body_len() > 0, "{} is empty", k.name);
        }
    }

    #[test]
    fn kernel_names_are_unique() {
        let mut names: Vec<&str> = all_kernels().iter().map(|k| k.name).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn lisp_marker_set_for_list_chase() {
        assert!(list_chase(8).lisp_like);
        assert!(!sieve(30).lisp_like);
    }
}
