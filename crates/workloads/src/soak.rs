//! Random **correctly-scheduled** programs for the fault-injection soak
//! harness.
//!
//! [`random_scheduled_program`] is the seed-driven twin of the generator
//! inside the pipeline's differential test: straight-line chunks of
//! arithmetic, loads and stores over a private data region, linked by
//! forward branches (squashing and not), with the load-delay scheduling
//! rule enforced on the fly so both the pipeline and the functional
//! reference model are defined on every program. Forward-only control
//! keeps every program terminating by construction.
//!
//! `mipsx soak` pairs one of these programs with a random
//! [`FaultPlan`](mipsx_core::inject::FaultPlan) per iteration and runs the
//! lockstep differ over the pair; a failure reproduces from the printed
//! seed alone.

use mipsx_asm::{Asm, Program};
use mipsx_isa::{ComputeOp, Cond, Instr, Reg, SquashMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Word address of the data region the generated loads/stores touch.
pub const SOAK_DATA_BASE: u32 = 3000;

/// Number of data words the generated programs may touch.
pub const SOAK_DATA_WORDS: i32 = 32;

/// Generate a random, correctly scheduled, always-terminating program.
/// Deterministic per `seed`.
pub fn random_scheduled_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_chunks = rng.gen_range(2usize..8);
    let chunks: Vec<Vec<Instr>> = (0..n_chunks)
        .map(|_| {
            let len = rng.gen_range(0usize..6);
            (0..len).map(|_| body_instr(&mut rng)).collect()
        })
        .collect();

    let mut asm = Asm::new(0);
    // Prologue: seed registers with distinct values, set the data base.
    asm.li(Reg::new(20), SOAK_DATA_BASE as i32);
    for i in 1..16u8 {
        asm.li(Reg::new(i), i as i32 * 17 - 40);
    }
    let end = asm.new_label();
    let mut labels: Vec<_> = (0..n_chunks).map(|_| asm.new_label()).collect();
    labels.push(end);
    for (idx, chunk) in chunks.into_iter().enumerate() {
        asm.bind(labels[idx]).expect("fresh label");
        let mut last_load_def: Option<Reg> = None;
        for instr in chunk {
            // Enforce the load-delay scheduling rule on the fly.
            if let Some(d) = last_load_def {
                let uses_at_alu: Vec<Reg> = match instr {
                    Instr::St { rs1, .. } => vec![rs1],
                    i => i.uses().collect(),
                };
                if uses_at_alu.contains(&d) {
                    asm.emit(Instr::Nop);
                }
            }
            last_load_def = if instr.is_load() { instr.def() } else { None };
            asm.emit(instr);
        }
        // Branch forward, skipping 0 or 1 chunks — forward-only, so the
        // program terminates regardless of which way conditions go.
        let skip = rng.gen_range(0usize..2);
        let target = labels[(idx + 1 + skip).min(n_chunks)];
        let cond = Cond::ALL[rng.gen_range(0usize..8)];
        let squash = if rng.gen_bool(0.5) {
            SquashMode::SquashIfNotTaken
        } else {
            SquashMode::NoSquash
        };
        let (r1, r2) = (
            Reg::new(rng.gen_range(0u8..16)),
            Reg::new(rng.gen_range(0u8..16)),
        );
        // Guard: the branch source must not be the immediately preceding
        // load's destination (conditions resolve a stage early).
        if last_load_def == Some(r1) || last_load_def == Some(r2) {
            asm.emit(Instr::Nop);
        }
        asm.branch(cond, squash, r1, r2, target);
        // Delay slots: safe fillers.
        asm.emit(Instr::Addi {
            rs1: Reg::new(19),
            rd: Reg::new(19),
            imm: 1,
        });
        asm.emit(Instr::Nop);
    }
    asm.bind(end).expect("fresh label");
    asm.emit(Instr::Halt);
    asm.finish().expect("generated program assembles")
}

/// One random body instruction: `addi`, logic/arithmetic computes, or a
/// load/store against the data region.
fn body_instr(rng: &mut StdRng) -> Instr {
    const OPS: [ComputeOp; 6] = [
        ComputeOp::AddU,
        ComputeOp::SubU,
        ComputeOp::And,
        ComputeOp::Or,
        ComputeOp::Xor,
        ComputeOp::Nor,
    ];
    match rng.gen_range(0u32..4) {
        0 => Instr::Addi {
            rs1: Reg::new(rng.gen_range(0u8..16)),
            rd: Reg::new(rng.gen_range(1u8..16)),
            imm: rng.gen_range(-40i32..40),
        },
        1 => Instr::Compute {
            op: OPS[rng.gen_range(0usize..OPS.len())],
            rs1: Reg::new(rng.gen_range(0u8..16)),
            rs2: Reg::new(rng.gen_range(0u8..16)),
            rd: Reg::new(rng.gen_range(1u8..16)),
            shamt: 0,
        },
        2 => Instr::Ld {
            rs1: Reg::new(20),
            rd: Reg::new(rng.gen_range(1u8..16)),
            offset: rng.gen_range(0i32..SOAK_DATA_WORDS),
        },
        _ => Instr::St {
            rs1: Reg::new(20),
            rsrc: Reg::new(rng.gen_range(0u8..16)),
            offset: rng.gen_range(0i32..SOAK_DATA_WORDS),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let a = random_scheduled_program(seed);
            let b = random_scheduled_program(seed);
            assert_eq!(a.words, b.words);
            assert_eq!(a.entry, b.entry);
        }
        assert_ne!(
            random_scheduled_program(1).words,
            random_scheduled_program(2).words
        );
    }

    #[test]
    fn programs_end_in_halt_and_stay_in_bounds() {
        for seed in 0..32u64 {
            let p = random_scheduled_program(seed);
            assert_eq!(*p.words.last().unwrap(), Instr::Halt.encode());
            assert!(
                (p.origin + p.words.len() as u32) < SOAK_DATA_BASE,
                "seed {seed}: text must not overlap the data region"
            );
        }
    }
}
