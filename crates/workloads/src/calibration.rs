//! Calibration constants — the single source of truth tying the synthetic
//! workloads to the paper's published statistics.
//!
//! Every constant cites its origin; the experiments in `mipsx-bench` check
//! that the *simulated* statistics land near these values, so a calibration
//! drift fails loudly instead of silently skewing results.

/// Fraction of dynamic instructions that are conditional branches in the
/// Pascal-class workloads (the classic ~1-in-6 of the MIPS trace data the
/// paper's branch section builds on).
pub const BRANCH_FRACTION: f64 = 1.0 / 6.0;

/// Fraction of branches that take, averaged over a run — *"in the static
/// case most branches go."* Loop-back branches take nearly always; forward
/// branches take less than half the time; the blend lands here.
pub const TAKEN_FRACTION: f64 = 0.65;

/// Fraction of branches for which an explicit compare must be generated
/// (no prior instruction happened to set an equivalent condition):
/// *"In roughly 80% of the branches an explicit compare operation must be
/// performed."*
pub const EXPLICIT_COMPARE_FRACTION: f64 = 0.80;

/// Probability the first branch delay slot can be filled with an
/// instruction hoisted from before the branch (Gross's MIPS data; with two
/// slots and no squashing *"we expected over 50% of the slots to remain
/// empty"*).
pub const P_FILL_SLOT1_FROM_BEFORE: f64 = 0.60;

/// Probability the second slot can also be filled from before the branch.
pub const P_FILL_SLOT2_FROM_BEFORE: f64 = 0.25;

/// Probability a slot can be filled from the branch target when squashing
/// is available (tuned so 2-slot squash-optional lands near the paper's
/// 1.3 cycles/branch).
pub const P_FILL_FROM_TARGET: f64 = 0.85;

/// Fraction of branches a quick compare could handle: *"Our initial
/// statistics indicated that the number of branches that could be handled
/// using a quick compare was between 70% and 80%."*
pub const QUICK_COMPARE_LOW: f64 = 0.70;
/// Upper end of the paper's quick-compare range.
pub const QUICK_COMPARE_HIGH: f64 = 0.80;

/// Dynamic no-op fraction for the Pascal benchmarks: *"15.6% of all
/// instructions are no-ops due to unused branch delays or other pipeline
/// interlocks."*
pub const PASCAL_NOP_FRACTION: f64 = 0.156;

/// Dynamic no-op fraction for Lisp: *"this number increases slightly to
/// 18.3% due to a larger number of jumps and many load-load interlocks
/// caused by chasing car and cdr chains."*
pub const LISP_NOP_FRACTION: f64 = 0.183;

/// Average cycles per instruction including Icache and Ecache overheads:
/// *"the average instruction requires about 1.7 cycles."*
pub const OVERALL_CPI: f64 = 1.7;

/// Sustained performance floor at 20 MHz: *"MIPS-X should have a sustained
/// throughput above 11 MIPs."*
pub const SUSTAINED_MIPS_FLOOR: f64 = 11.0;

/// Average Icache miss ratio on the large benchmarks with the final
/// (double-fetch) design: *"the cache has an average miss rate of 12%
/// resulting in an average instruction executing in 1.24 cycles."*
pub const ICACHE_MISS_FINAL: f64 = 0.12;

/// Average instruction-fetch cost of the final Icache design, in cycles.
pub const ICACHE_FETCH_COST_FINAL: f64 = 1.24;

/// Miss ratio of the initial single-word-fetch organization on medium
/// programs: *"we achieved miss rates that averaged over 20%."*
pub const ICACHE_MISS_SINGLE_FETCH: f64 = 0.20;

/// Average cycles per branch the real reorganizer achieved with
/// traditional optimization on small benchmarks.
pub const REORG_TRADITIONAL_CYCLES_PER_BRANCH: f64 = 1.5;

/// Average cycles per branch after the improved optimization on the large
/// benchmarks: *"the average branch takes 1.27 cycles."*
pub const REORG_IMPROVED_CYCLES_PER_BRANCH: f64 = 1.27;

/// Path-length ratio vs the VAX 11/780 with the Stanford back end:
/// *"MIPS-X executes about 25% more instructions."*
pub const VAX_PATH_RATIO_STANFORD: f64 = 1.25;

/// Speedup vs the VAX 11/780 for unoptimized code, Stanford back end:
/// *"executes the programs about 14 times faster."*
pub const VAX_SPEEDUP_STANFORD: f64 = 14.0;

/// Path-length ratio vs the Berkeley Pascal compiler's VAX code:
/// *"the path length is 80% longer."*
pub const VAX_PATH_RATIO_BERKELEY: f64 = 1.80;

/// Speedup vs the Berkeley-compiled VAX: *"the speedup is only 10 times."*
pub const VAX_SPEEDUP_BERKELEY: f64 = 10.0;

/// Design clock (MHz).
pub const CLOCK_MHZ: f64 = 20.0;

/// Clock the first silicon actually ran at (MHz).
pub const FIRST_SILICON_MHZ: f64 = 16.0;

#[cfg(test)]
mod tests {
    use super::*;

    // Asserting on constants is the whole point: the calibration table
    // must stay internally consistent.
    #[allow(clippy::assertions_on_constants)]
    #[test]
    fn constants_are_sane() {
        assert!(BRANCH_FRACTION > 0.0 && BRANCH_FRACTION < 1.0);
        assert!(TAKEN_FRACTION > 0.5, "most branches go");
        assert!(P_FILL_SLOT1_FROM_BEFORE > P_FILL_SLOT2_FROM_BEFORE);
        assert!(LISP_NOP_FRACTION > PASCAL_NOP_FRACTION);
        assert!(ICACHE_MISS_SINGLE_FETCH > ICACHE_MISS_FINAL);
        assert!((ICACHE_FETCH_COST_FINAL - (1.0 + 2.0 * ICACHE_MISS_FINAL)).abs() < 1e-9);
        assert!(VAX_SPEEDUP_STANFORD > VAX_SPEEDUP_BERKELEY);
        assert!(CLOCK_MHZ / OVERALL_CPI > SUSTAINED_MIPS_FLOOR);
    }
}
