//! Calibrated synthetic program generators.
//!
//! These stand in for the paper's large Pascal and Lisp benchmarks (see
//! DESIGN.md §4). A generated program is a real, terminating [`RawProgram`]:
//! nested counted loops whose bodies mix ALU work, memory traffic, an
//! in-register xorshift generator whose bits drive data-dependent forward
//! branches, optional car/cdr-style load chains, and optional leaf calls.
//! The knobs in [`SynthConfig`] map one-to-one onto the statistics in
//! [`crate::calibration`].
//!
//! Register conventions inside generated code: `r1..r15` scratch data,
//! `r16` xorshift state, `r17` data base, `r18` inner-loop counter, `r21`
//! branch scratch, `r26` outer-loop counter, `r31` link.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mipsx_isa::{ComputeOp, Cond, Instr, Reg};
use mipsx_reorg::{RawBlock, RawProgram, Terminator};

/// Base address of the scratch data region generated code touches.
pub const DATA_BASE: i32 = 4096;
/// Size of the scratch region in words.
pub const DATA_WORDS: i32 = 64;

/// Generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// RNG seed — same seed, same program.
    pub seed: u64,
    /// Number of inner loops laid out one after another.
    pub loops: usize,
    /// Body segments per inner loop.
    pub blocks_per_loop: usize,
    /// Mean body instructions per segment.
    pub mean_block_len: usize,
    /// Inner-loop trip count.
    pub trip_count: u32,
    /// Outer-loop repetitions of the whole loop sequence (code re-visits,
    /// which is what exercises the instruction cache).
    pub outer_trips: u32,
    /// Probability a segment ends in a data-dependent forward branch
    /// (vs an unconditional jump to the next segment).
    pub p_forward_branch: f64,
    /// Probability of appending a branch-independent filler instruction
    /// after a segment's compare — this is what makes delay slots
    /// hoist-fillable (calibration: `P_FILL_SLOT1_FROM_BEFORE`).
    pub p_filler_tail: f64,
    /// Probability a body instruction pair is a load chased by its use
    /// (the Lisp car/cdr pattern that costs load-delay no-ops).
    pub load_chain_density: f64,
    /// Probability a segment ends by calling a leaf routine (Lisp's extra
    /// jumps).
    pub call_density: f64,
    /// Probability a jump-ended segment's last instruction is a load whose
    /// value crosses the block boundary — such tails block delay-slot
    /// hoisting entirely (a load may not sit in the final slot), the main
    /// source of empty jump slots in real code.
    pub p_tail_load: f64,
}

impl SynthConfig {
    /// Pascal-like workload: moderate branching, few chained loads, no
    /// leaf-call storms.
    pub fn pascal_like(seed: u64) -> SynthConfig {
        SynthConfig {
            seed,
            loops: 6,
            blocks_per_loop: 3,
            mean_block_len: 3,
            trip_count: 8,
            outer_trips: 4,
            p_forward_branch: 0.75,
            p_filler_tail: 0.70,
            load_chain_density: 0.30,
            call_density: 0.08,
            p_tail_load: 0.75,
        }
    }

    /// Lisp-like workload: *"a larger number of jumps and many load-load
    /// interlocks caused by chasing car and cdr chains."*
    pub fn lisp_like(seed: u64) -> SynthConfig {
        SynthConfig {
            seed,
            loops: 6,
            blocks_per_loop: 3,
            mean_block_len: 2,
            trip_count: 8,
            outer_trips: 4,
            p_forward_branch: 0.65,
            p_filler_tail: 0.50,
            load_chain_density: 0.55,
            call_density: 0.20,
            p_tail_load: 0.65,
        }
    }

    /// A small fast-running configuration for tests.
    pub fn tiny(seed: u64) -> SynthConfig {
        SynthConfig {
            loops: 2,
            blocks_per_loop: 2,
            mean_block_len: 3,
            trip_count: 4,
            outer_trips: 2,
            ..SynthConfig::pascal_like(seed)
        }
    }

    /// Scale the code footprint (for instruction-cache experiments): more
    /// loops → larger instruction working set.
    pub fn with_code_scale(mut self, loops: usize, outer_trips: u32) -> SynthConfig {
        self.loops = loops;
        self.outer_trips = outer_trips;
        self
    }
}

/// A generated program plus its configuration.
#[derive(Clone, Debug)]
pub struct SynthProgram {
    /// The unscheduled program, ready for the reorganizer.
    pub raw: RawProgram,
    /// The configuration that produced it.
    pub config: SynthConfig,
}

fn r(n: u8) -> Reg {
    Reg::new(n)
}

fn li(rd: u8, imm: i32) -> Instr {
    Instr::Addi {
        rs1: Reg::ZERO,
        rd: r(rd),
        imm,
    }
}

fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
    Instr::Addi {
        rs1: r(rs1),
        rd: r(rd),
        imm,
    }
}

fn alu(op: ComputeOp, rd: u8, rs1: u8, rs2: u8, shamt: u8) -> Instr {
    Instr::Compute {
        op,
        rs1: r(rs1),
        rs2: r(rs2),
        rd: r(rd),
        shamt,
    }
}

/// A random ALU-only instruction — used for delay-slot filler material,
/// which must be hoistable (loads may not sit in the final slot).
fn random_alu_instr(rng: &mut StdRng) -> Instr {
    let rd = rng.gen_range(1u8..16);
    let rs1 = rng.gen_range(1u8..16);
    let rs2 = rng.gen_range(1u8..16);
    match rng.gen_range(0u8..6) {
        0 => addi(rd, rs1, rng.gen_range(-64..64)),
        1 => alu(ComputeOp::AddU, rd, rs1, rs2, 0),
        2 => alu(ComputeOp::SubU, rd, rs1, rs2, 0),
        3 => alu(ComputeOp::Xor, rd, rs1, rs2, 0),
        4 => alu(ComputeOp::Or, rd, rs1, rs2, 0),
        _ => alu(ComputeOp::Sll, rd, rs1, 0, rng.gen_range(1..5)),
    }
}

/// One random straight-line instruction over the scratch registers.
///
/// The class mix targets the paper's memory profile — *"on average, data is
/// only fetched every third cycle"* — roughly a quarter loads and a sixth
/// stores, the rest ALU work.
fn random_instr(rng: &mut StdRng) -> Instr {
    let rd = rng.gen_range(1u8..16);
    let rs1 = rng.gen_range(1u8..16);
    let rs2 = rng.gen_range(1u8..16);
    match rng.gen_range(0u8..12) {
        0 => addi(rd, rs1, rng.gen_range(-64..64)),
        1 => alu(ComputeOp::AddU, rd, rs1, rs2, 0),
        2 => alu(ComputeOp::SubU, rd, rs1, rs2, 0),
        3 => alu(ComputeOp::Xor, rd, rs1, rs2, 0),
        4 => alu(ComputeOp::And, rd, rs1, rs2, 0),
        5 => alu(ComputeOp::Or, rd, rs1, rs2, 0),
        6 => alu(ComputeOp::Sll, rd, rs1, 0, rng.gen_range(1..5)),
        7..=9 => Instr::Ld {
            rs1: r(17),
            rd: r(rd),
            offset: rng.gen_range(0..DATA_WORDS),
        },
        _ => Instr::St {
            rs1: r(17),
            rsrc: r(rs1),
            offset: rng.gen_range(0..DATA_WORDS),
        },
    }
}

/// A load followed by a use of its value — the car/cdr chain. The
/// reorganizer has to break the pair with an independent instruction or a
/// no-op.
fn load_chain(rng: &mut StdRng) -> [Instr; 2] {
    let rd = rng.gen_range(1u8..16);
    let acc = rng.gen_range(1u8..16);
    [
        Instr::Ld {
            rs1: r(17),
            rd: r(rd),
            offset: rng.gen_range(0..DATA_WORDS),
        },
        alu(ComputeOp::AddU, acc, acc, rd, 0),
    ]
}

/// Advance the in-register generator state (`r16`) and leave a masked test
/// value in `r21` — the paper's *explicit compare* (80 % of branches need
/// one). Mask registers `r22` (1) and `r24` (3) are preloaded by the init
/// block. Returns the instructions and the probability that `r21 == 0`.
fn rng_test(rng: &mut StdRng) -> (Vec<Instr>, f64) {
    let shift = rng.gen_range(3u8..9);
    let mask_bits = rng.gen_range(1u8..3); // 1 or 2 bits
    let mask_reg = if mask_bits == 1 { 22 } else { 24 };
    let seq = vec![
        // A short mixing step plus an odd increment keeps the stream
        // aperiodic at a quarter the instruction cost of full xorshift.
        alu(ComputeOp::Sll, 20, 16, 0, shift),
        alu(ComputeOp::Xor, 16, 16, 20, 0),
        addi(16, 16, rng.gen_range(0..64) * 2 + 1),
        alu(ComputeOp::And, 21, 16, mask_reg, 0),
    ];
    let p_zero = 1.0 / f64::from(1 << mask_bits);
    (seq, p_zero)
}

/// Generate a program.
pub fn generate(config: SynthConfig) -> SynthProgram {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut blocks: Vec<RawBlock> = Vec::new();
    let mut terms: Vec<Terminator> = Vec::new();
    // Leaf routines are appended after the halt; collect call requests as
    // (call_site_block, leaf_index) and patch targets at the end.
    let mut pending_calls: Vec<(usize, usize)> = Vec::new();
    let mut leaf_count = 0usize;

    // b0: init block.
    blocks.push(RawBlock::new(vec![
        li(17, DATA_BASE),
        li(16, (config.seed as i32 & 0x3FFF) | 1),
        li(26, config.outer_trips as i32),
        li(22, 1), // quick-test mask
        li(24, 3), // wider mask
        li(23, 1), // full-compare constant
        li(1, 3),
        li(2, 5),
        li(3, 7),
    ]));
    terms.push(Terminator::Jump(1)); // falls into the first preheader

    let first_preheader = blocks.len();

    for l in 0..config.loops {
        // Preheader: set the trip counter and reposition the data window
        // (each loop works a different slice, so the data footprint scales
        // with the code footprint).
        blocks.push(RawBlock::new(vec![
            li(18, config.trip_count as i32),
            li(17, DATA_BASE + (l as i32 % 8) * DATA_WORDS),
        ]));
        terms.push(Terminator::Jump(blocks.len())); // next block
        let loop_head = blocks.len();

        // Latch position is known in advance: head + blocks_per_loop.
        let latch = loop_head + config.blocks_per_loop;

        for b in 0..config.blocks_per_loop {
            let id = blocks.len();
            let mut body: Vec<Instr> = Vec::new();
            let len = 1 + rng.gen_range(0..config.mean_block_len * 2);
            let mut i = 0;
            while i < len {
                if rng.gen_bool(config.load_chain_density) {
                    body.extend(load_chain(&mut rng));
                    i += 2;
                } else {
                    body.push(random_instr(&mut rng));
                    i += 1;
                }
            }
            let is_last = b + 1 == config.blocks_per_loop;
            if is_last {
                if rng.gen_bool(config.p_tail_load) {
                    body.push(Instr::Ld {
                        rs1: r(17),
                        rd: r(rng.gen_range(1u8..16)),
                        offset: rng.gen_range(0..DATA_WORDS),
                    });
                }
                blocks.push(RawBlock::new(body));
                terms.push(Terminator::Jump(latch));
            } else if rng.gen_bool(config.call_density) {
                // Leaf call; the target is patched once leaves exist.
                blocks.push(RawBlock::new(body));
                pending_calls.push((id, leaf_count));
                leaf_count = (leaf_count + 1) % 3; // up to three leaves
                terms.push(Terminator::Call {
                    target: usize::MAX, // patched below
                    link: Reg::LINK,
                    ret_to: id + 1,
                });
            } else if rng.gen_bool(config.p_forward_branch) {
                // Data-dependent forward branch skipping the next segment.
                let (test, p_zero) = rng_test(&mut rng);
                body.extend(test);
                // Condition mix calibrated for the quick-compare study:
                // roughly a quarter of forward branches are full magnitude
                // compares between two registers (not quick-compare-able);
                // the rest are equality or sign tests against r0.
                let (cond, rs2, p_taken) = if rng.gen_bool(0.35) {
                    // r21 in 0..=mask vs the constant 1 preloaded in r23.
                    if rng.gen_bool(0.5) {
                        (Cond::Lt, 23u8, p_zero) // r21 < 1  ⇔  r21 == 0
                    } else {
                        (Cond::Ge, 23u8, 1.0 - p_zero)
                    }
                } else if rng.gen_bool(0.65) {
                    // Biased toward taken: "in the static case most
                    // branches go."
                    (Cond::Ne, 0, 1.0 - p_zero)
                } else {
                    (Cond::Eq, 0, p_zero)
                };
                if rng.gen_bool(config.p_filler_tail) {
                    body.push(random_alu_instr(&mut rng));
                    if rng.gen_bool(0.65) {
                        body.push(random_alu_instr(&mut rng));
                    }
                }
                let taken = (id + 2).min(latch);
                blocks.push(RawBlock::new(body));
                terms.push(Terminator::Branch {
                    cond,
                    rs1: r(21),
                    rs2: r(rs2),
                    taken,
                    fall: id + 1,
                    p_taken,
                });
            } else {
                if rng.gen_bool(config.p_tail_load) {
                    body.push(Instr::Ld {
                        rs1: r(17),
                        rd: r(rng.gen_range(1u8..16)),
                        offset: rng.gen_range(0..DATA_WORDS),
                    });
                }
                blocks.push(RawBlock::new(body));
                terms.push(Terminator::Jump(id + 1));
            }
        }

        // Latch: count down, walk the data window, branch back.
        let id = blocks.len();
        debug_assert_eq!(id, latch);
        blocks.push(RawBlock::new(vec![addi(18, 18, -1), addi(17, 17, 8)]));
        terms.push(Terminator::Branch {
            cond: Cond::Gt,
            rs1: r(18),
            rs2: Reg::ZERO,
            taken: loop_head,
            fall: id + 1,
            p_taken: 1.0 - 1.0 / f64::from(config.trip_count.max(2)),
        });
        let _ = l;
    }

    // Outer latch: repeat the whole loop sequence.
    let id = blocks.len();
    blocks.push(RawBlock::new(vec![addi(26, 26, -1)]));
    terms.push(Terminator::Branch {
        cond: Cond::Gt,
        rs1: r(26),
        rs2: Reg::ZERO,
        taken: first_preheader,
        fall: id + 1,
        p_taken: 1.0 - 1.0 / f64::from(config.outer_trips.max(2)),
    });

    // Halt block.
    blocks.push(RawBlock::default());
    terms.push(Terminator::Halt);

    // Leaf routines (if any call sites exist).
    if !pending_calls.is_empty() {
        let leaves_needed = pending_calls.iter().map(|&(_, l)| l).max().unwrap_or(0) + 1;
        let mut leaf_ids = Vec::new();
        for _ in 0..leaves_needed {
            let id = blocks.len();
            let mut body: Vec<Instr> = (0..rng.gen_range(2..5))
                .map(|_| random_instr(&mut rng))
                .collect();
            // Leaves typically end producing a result from memory: the
            // return's delay slots go empty.
            body.push(Instr::Ld {
                rs1: r(17),
                rd: r(rng.gen_range(1u8..16)),
                offset: rng.gen_range(0..DATA_WORDS),
            });
            blocks.push(RawBlock::new(body));
            terms.push(Terminator::Return { link: Reg::LINK });
            leaf_ids.push(id);
        }
        for (site, leaf) in pending_calls {
            if let Terminator::Call { target, .. } = &mut terms[site] {
                *target = leaf_ids[leaf];
            }
        }
    }

    SynthProgram {
        raw: RawProgram::new(blocks, terms),
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(SynthConfig::pascal_like(42));
        let b = generate(SynthConfig::pascal_like(42));
        assert_eq!(a.raw, b.raw);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(SynthConfig::pascal_like(1));
        let b = generate(SynthConfig::pascal_like(2));
        assert_ne!(a.raw, b.raw);
    }

    #[test]
    fn programs_validate() {
        for seed in 0..8 {
            generate(SynthConfig::pascal_like(seed)).raw.validate();
            generate(SynthConfig::lisp_like(seed)).raw.validate();
            generate(SynthConfig::tiny(seed)).raw.validate();
        }
    }

    #[test]
    fn lisp_config_has_more_chains_and_calls() {
        let p = SynthConfig::pascal_like(0);
        let l = SynthConfig::lisp_like(0);
        assert!(l.load_chain_density > p.load_chain_density);
        assert!(l.call_density > p.call_density);
    }

    #[test]
    fn code_scale_grows_block_count() {
        let small = generate(SynthConfig::pascal_like(7));
        let large = generate(SynthConfig::pascal_like(7).with_code_scale(20, 2));
        assert!(large.raw.len() > small.raw.len());
    }
}
