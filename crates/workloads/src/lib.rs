//! # mipsx-workloads — benchmarks for the MIPS-X reproduction
//!
//! The paper's evaluation ran *"large Pascal and Lisp benchmarks"* through
//! the Stanford compiler system. That compiler stack cannot be rebuilt, so
//! this crate substitutes two things (documented in DESIGN.md §4):
//!
//! - **hand-written kernels** ([`kernels`]) — recursion, loops, pointer
//!   chasing, sorting: real programs with checkable answers that exercise
//!   every subsystem (calls, stacks, load interlocks, branches both ways);
//! - **calibrated synthetic generators** ([`synth`]) — parameterized
//!   basic-block program generators whose statistics (branch frequency,
//!   taken fraction, slot-fill probabilities, load-load chain density, code
//!   working set) are set to the values the paper and its companion
//!   sources report, collected in [`calibration`]. The experiments then
//!   *derive* the paper's numbers from simulation rather than hard-coding
//!   them.
//!
//! Instruction-address [`traces`] for the pure trace-driven cache studies
//! and seed-driven random programs for the fault-injection [`soak`]
//! harness round out the crate.

pub mod calibration;
pub mod kernels;
pub mod soak;
pub mod streams;
pub mod synth;
pub mod traces;

pub use kernels::{all_kernels, find_kernel, kernel_names, Kernel};
pub use soak::random_scheduled_program;
pub use streams::streaming;
pub use synth::{SynthConfig, SynthProgram};
