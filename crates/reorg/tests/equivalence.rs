//! Scheduling soundness: for every branch scheme of Table 1, the
//! reorganized program must produce exactly the architectural state of the
//! naively lowered (all-nops) program when executed on the cycle-accurate
//! pipeline — with interlock checking on, so any missed load-delay or
//! squash bug fails loudly.

use mipsx_core::{InterlockPolicy, Machine, MachineConfig};
use mipsx_isa::{ComputeOp, Cond, Instr, Reg};
use mipsx_reorg::{BranchScheme, RawBlock, RawProgram, Reorganizer, Terminator};
use proptest::prelude::*;

const DATA_BASE: i32 = 4000;
const DATA_WORDS: u32 = 64;

fn run(program: &mipsx_asm::Program, slots: usize) -> (Vec<u32>, Vec<u32>, u64) {
    let mut m = Machine::new(MachineConfig {
        branch_delay_slots: slots,
        interlock: InterlockPolicy::Detect,
        ..MachineConfig::default()
    });
    m.load_program(program);
    let stats = m
        .run(2_000_000)
        .unwrap_or_else(|e| panic!("execution failed: {e}\n{program}"));
    let mut regs = m.cpu().regs_snapshot().to_vec();
    // The link register holds a code address, which legitimately differs
    // between layouts; exclude it from architectural comparison.
    regs[Reg::LINK.index()] = 0;
    let mem: Vec<u32> = (DATA_BASE as u32..DATA_BASE as u32 + DATA_WORDS)
        .map(|a| m.read_word(a))
        .collect();
    (regs, mem, stats.cycles)
}

/// Check naive vs reorganized equivalence for every Table 1 scheme; returns
/// the cycle counts (naive, reorganized) for the MIPS-X scheme.
fn assert_equivalent(raw: &RawProgram) -> (u64, u64) {
    let mut mipsx_cycles = (0, 0);
    for scheme in BranchScheme::table1() {
        let r = Reorganizer::new(scheme);
        let (naive, _) = r.lower_naive(raw).expect("naive lowering");
        let (opt, report) = r.reorganize(raw).expect("reorganization");
        let (regs_a, mem_a, cycles_a) = run(&naive, scheme.slots);
        let (regs_b, mem_b, cycles_b) = run(&opt, scheme.slots);
        assert_eq!(
            regs_a, regs_b,
            "register divergence under {scheme} ({report:?})\n{opt}"
        );
        assert_eq!(mem_a, mem_b, "memory divergence under {scheme}");
        if scheme == BranchScheme::mipsx() {
            mipsx_cycles = (cycles_a, cycles_b);
        }
    }
    mipsx_cycles
}

fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
    Instr::Addi {
        rs1: Reg::new(rs1),
        rd: Reg::new(rd),
        imm,
    }
}

fn compute(op: ComputeOp, rd: u8, rs1: u8, rs2: u8) -> Instr {
    Instr::Compute {
        op,
        rs1: Reg::new(rs1),
        rs2: Reg::new(rs2),
        rd: Reg::new(rd),
        shamt: 3,
    }
}

#[test]
fn countdown_loop_is_equivalent_and_faster() {
    // b0: r1 = 8; r2 = 0; jump b1
    // b1: r2 += r1; r3 = r2 ^ r1; r1 -= 1; if r1 != 0 goto b1
    // b2: halt
    let raw = RawProgram::new(
        vec![
            RawBlock::new(vec![addi(1, 0, 8), addi(2, 0, 0)]),
            RawBlock::new(vec![
                compute(ComputeOp::AddU, 2, 2, 1),
                compute(ComputeOp::Xor, 3, 2, 1),
                addi(1, 1, -1),
            ]),
            RawBlock::default(),
        ],
        vec![
            Terminator::Jump(1),
            Terminator::Branch {
                cond: Cond::Ne,
                rs1: Reg::new(1),
                rs2: Reg::ZERO,
                taken: 1,
                fall: 2,
                p_taken: 0.875,
            },
            Terminator::Halt,
        ],
    );
    let (naive, optimized) = assert_equivalent(&raw);
    assert!(
        optimized < naive,
        "reorganized loop should be faster: {optimized} vs {naive}"
    );
}

#[test]
fn memory_traffic_is_equivalent() {
    // Store then reload through a loop with a load-use pattern the
    // load-delay pass must fix.
    let raw = RawProgram::new(
        vec![
            RawBlock::new(vec![addi(20, 0, DATA_BASE), addi(1, 0, 6)]),
            RawBlock::new(vec![
                Instr::St {
                    rs1: Reg::new(20),
                    rsrc: Reg::new(1),
                    offset: 0,
                },
                Instr::Ld {
                    rs1: Reg::new(20),
                    rd: Reg::new(5),
                    offset: 0,
                },
                compute(ComputeOp::AddU, 6, 5, 5), // load-use at distance 1!
                Instr::St {
                    rs1: Reg::new(20),
                    rsrc: Reg::new(6),
                    offset: 1,
                },
                addi(20, 20, 2),
                addi(1, 1, -1),
            ]),
            RawBlock::default(),
        ],
        vec![
            Terminator::Jump(1),
            Terminator::Branch {
                cond: Cond::Gt,
                rs1: Reg::new(1),
                rs2: Reg::ZERO,
                taken: 1,
                fall: 2,
                p_taken: 0.83,
            },
            Terminator::Halt,
        ],
    );
    assert_equivalent(&raw);
}

#[test]
fn call_and_return_equivalence() {
    // b0: set up args, call b2 (ret to b1)
    // b1: consume result, halt path
    // b2: callee computes, returns
    let raw = RawProgram::new(
        vec![
            RawBlock::new(vec![addi(1, 0, 21), addi(9, 0, 3)]),
            RawBlock::new(vec![compute(ComputeOp::AddU, 4, 3, 3)]),
            RawBlock::new(vec![compute(ComputeOp::AddU, 3, 1, 1), addi(9, 9, 40)]),
        ],
        vec![
            Terminator::Call {
                target: 2,
                link: Reg::LINK,
                ret_to: 1,
            },
            Terminator::Halt,
            Terminator::Return { link: Reg::LINK },
        ],
    );
    assert_equivalent(&raw);
}

#[test]
fn diamond_with_biased_branch() {
    // if r1 < r2 { r5 = r1 & r2 } else { r5 = r1 | r2 }; join.
    let raw = RawProgram::new(
        vec![
            RawBlock::new(vec![addi(1, 0, 100), addi(2, 0, 37)]),
            RawBlock::new(vec![compute(ComputeOp::Or, 5, 1, 2), addi(6, 5, 1)]),
            RawBlock::default(),
            RawBlock::new(vec![compute(ComputeOp::And, 5, 1, 2), addi(7, 5, 2)]),
            RawBlock::default(),
        ],
        vec![
            Terminator::Branch {
                cond: Cond::Lt,
                rs1: Reg::new(1),
                rs2: Reg::new(2),
                taken: 3,
                fall: 1,
                p_taken: 0.3,
            },
            Terminator::Jump(4),
            Terminator::Jump(4),
            Terminator::Jump(4),
            Terminator::Halt,
        ],
    );
    assert_equivalent(&raw);
}

// ---------------------------------------------------------------------
// Property test: random forward-branching programs.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum GenInstr {
    Addi { rd: u8, rs1: u8, imm: i32 },
    Alu { op: u8, rd: u8, rs1: u8, rs2: u8 },
    Ld { rd: u8, off: u8 },
    St { rsrc: u8, off: u8 },
}

fn lower_gen(i: &GenInstr) -> Instr {
    const OPS: [ComputeOp; 6] = [
        ComputeOp::AddU,
        ComputeOp::SubU,
        ComputeOp::And,
        ComputeOp::Or,
        ComputeOp::Xor,
        ComputeOp::Sll,
    ];
    match *i {
        GenInstr::Addi { rd, rs1, imm } => addi(rd, rs1, imm),
        GenInstr::Alu { op, rd, rs1, rs2 } => compute(OPS[op as usize % 6], rd, rs1, rs2),
        GenInstr::Ld { rd, off } => Instr::Ld {
            rs1: Reg::new(20),
            rd: Reg::new(rd),
            offset: (off % DATA_WORDS as u8) as i32,
        },
        GenInstr::St { rsrc, off } => Instr::St {
            rs1: Reg::new(20),
            rsrc: Reg::new(rsrc),
            offset: (off % DATA_WORDS as u8) as i32,
        },
    }
}

fn arb_gen_instr() -> impl Strategy<Value = GenInstr> {
    prop_oneof![
        (1u8..16, 0u8..16, -50i32..50).prop_map(|(rd, rs1, imm)| GenInstr::Addi { rd, rs1, imm }),
        (0u8..6, 1u8..16, 0u8..16, 0u8..16).prop_map(|(op, rd, rs1, rs2)| GenInstr::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..16, any::<u8>()).prop_map(|(rd, off)| GenInstr::Ld { rd, off }),
        (0u8..16, any::<u8>()).prop_map(|(rsrc, off)| GenInstr::St { rsrc, off }),
    ]
}

prop_compose! {
    fn arb_block()(instrs in prop::collection::vec(arb_gen_instr(), 0..8)) -> Vec<GenInstr> {
        instrs
    }
}

fn build_raw(blocks: Vec<Vec<GenInstr>>, choices: Vec<(u8, u8, u8, bool)>) -> RawProgram {
    let n = blocks.len();
    let mut raw_blocks: Vec<RawBlock> = Vec::new();
    let mut terms: Vec<Terminator> = Vec::new();
    for (id, body) in blocks.iter().enumerate() {
        let mut instrs: Vec<Instr> = body.iter().map(lower_gen).collect();
        if id == 0 {
            // Prologue: the data base register.
            instrs.insert(0, addi(20, 0, DATA_BASE));
        }
        raw_blocks.push(RawBlock::new(instrs));
        let (c, r1, r2, far) = choices[id];
        if id + 1 >= n {
            terms.push(Terminator::Halt);
        } else {
            // Forward-only control: branch taken-target strictly ahead.
            let taken = if far {
                ((id + 2).min(n - 1)).max(id + 1)
            } else {
                id + 1
            };
            terms.push(Terminator::Branch {
                cond: Cond::ALL[(c % 8) as usize],
                rs1: Reg::new(r1 % 16),
                rs2: Reg::new(r2 % 16),
                taken,
                fall: id + 1,
                p_taken: if far { 0.7 } else { 0.4 },
            });
        }
    }
    RawProgram::new(raw_blocks, terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn random_programs_schedule_soundly(
        blocks in prop::collection::vec(arb_block(), 2..8),
        choices in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()), 8),
    ) {
        prop_assume!(choices.len() >= blocks.len());
        let raw = build_raw(blocks, choices);
        assert_equivalent(&raw);
    }
}
