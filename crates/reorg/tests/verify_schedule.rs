//! Property test: every program the reorganizer emits — under all six
//! Table 1 branch schemes, with and without slot filling — passes the
//! static hazard verifier with zero errors.
//!
//! This is the reorganizer's output contract stated directly: the
//! scheduler may only ever trade performance, never legality. The random
//! programs mirror the equivalence suite's generator (forward-branching
//! CFGs over loads, stores and ALU ops) and add multiply-step chains so
//! the MD rule sees reorganized `mstep` runs too.

use mipsx_isa::{ComputeOp, Cond, Instr, Reg, SpecialReg};
use mipsx_reorg::{BranchScheme, RawBlock, RawProgram, Reorganizer, Terminator};
use mipsx_verify::{verify, VerifyConfig};
use proptest::prelude::*;

const DATA_BASE: i32 = 4000;
const DATA_WORDS: i32 = 64;

fn addi(rd: u8, rs1: u8, imm: i32) -> Instr {
    Instr::Addi {
        rs1: Reg::new(rs1),
        rd: Reg::new(rd),
        imm,
    }
}

fn compute(op: ComputeOp, rd: u8, rs1: u8, rs2: u8) -> Instr {
    Instr::Compute {
        op,
        rs1: Reg::new(rs1),
        rs2: Reg::new(rs2),
        rd: Reg::new(rd),
        shamt: 0,
    }
}

/// Schedule `raw` every way the repo knows how and assert the verifier
/// finds no error-severity diagnostic in any of the outputs.
fn assert_verifies_clean(raw: &RawProgram) {
    for scheme in BranchScheme::table1() {
        let reorg = Reorganizer::new(scheme);
        let config = VerifyConfig::for_slots(scheme.slots);
        for (label, result) in [
            ("reorganize", reorg.reorganize(raw)),
            ("lower_naive", reorg.lower_naive(raw)),
        ] {
            let (program, report) = result.expect("lowering succeeds");
            let lint = verify(&program, &config);
            assert!(
                lint.is_clean(),
                "[{scheme}] {label} emitted an illegal schedule:\n{lint}\n{program}"
            );
            assert!(report.verified, "[{scheme}] {label}: report disagrees");
            assert_eq!(
                report.diagnostics,
                lint.diagnostics.len(),
                "[{scheme}] {label}: report diagnostic count disagrees"
            );
        }
    }
}

#[derive(Clone, Debug)]
enum GenInstr {
    Addi { rd: u8, rs1: u8, imm: i32 },
    Alu { op: u8, rd: u8, rs1: u8, rs2: u8 },
    Ld { rd: u8, off: u8 },
    St { rsrc: u8, off: u8 },
}

fn lower_gen(i: &GenInstr) -> Instr {
    const OPS: [ComputeOp; 6] = [
        ComputeOp::AddU,
        ComputeOp::SubU,
        ComputeOp::And,
        ComputeOp::Or,
        ComputeOp::Xor,
        ComputeOp::Sll,
    ];
    match *i {
        GenInstr::Addi { rd, rs1, imm } => addi(rd, rs1, imm),
        GenInstr::Alu { op, rd, rs1, rs2 } => compute(OPS[op as usize % 6], rd, rs1, rs2),
        GenInstr::Ld { rd, off } => Instr::Ld {
            rs1: Reg::new(20),
            rd: Reg::new(rd),
            offset: (off % DATA_WORDS as u8) as i32,
        },
        GenInstr::St { rsrc, off } => Instr::St {
            rs1: Reg::new(20),
            rsrc: Reg::new(rsrc),
            offset: (off % DATA_WORDS as u8) as i32,
        },
    }
}

fn arb_gen_instr() -> impl Strategy<Value = GenInstr> {
    prop_oneof![
        (1u8..16, 0u8..16, -50i32..50).prop_map(|(rd, rs1, imm)| GenInstr::Addi { rd, rs1, imm }),
        (0u8..6, 1u8..16, 0u8..16, 0u8..16).prop_map(|(op, rd, rs1, rs2)| GenInstr::Alu {
            op,
            rd,
            rs1,
            rs2
        }),
        (1u8..16, any::<u8>()).prop_map(|(rd, off)| GenInstr::Ld { rd, off }),
        (0u8..16, any::<u8>()).prop_map(|(rsrc, off)| GenInstr::St { rsrc, off }),
    ]
}

/// A complete 32-step multiply: MD setup plus the full step run. Complete
/// chains are the only thing compilers emit, and the verifier's MD rule
/// must accept them wherever the scheduler ends up placing the steps.
fn md_chain_body() -> Vec<Instr> {
    let mut body = vec![
        Instr::Movtos {
            sreg: SpecialReg::Md,
            rs: Reg::new(8),
        },
        addi(9, 0, 0),
    ];
    body.extend(std::iter::repeat_n(compute(ComputeOp::Mstep, 9, 7, 9), 32));
    body
}

fn build_raw(
    blocks: Vec<Vec<GenInstr>>,
    choices: Vec<(u8, u8, u8, bool)>,
    md_block: Option<usize>,
) -> RawProgram {
    let n = blocks.len();
    let mut raw_blocks: Vec<RawBlock> = Vec::new();
    let mut terms: Vec<Terminator> = Vec::new();
    for (id, body) in blocks.iter().enumerate() {
        let mut instrs: Vec<Instr> = body.iter().map(lower_gen).collect();
        if id == 0 {
            instrs.insert(0, addi(20, 0, DATA_BASE));
        }
        if md_block == Some(id) {
            instrs.extend(md_chain_body());
        }
        raw_blocks.push(RawBlock::new(instrs));
        let (c, r1, r2, far) = choices[id];
        if id + 1 >= n {
            terms.push(Terminator::Halt);
        } else {
            let taken = if far {
                ((id + 2).min(n - 1)).max(id + 1)
            } else {
                id + 1
            };
            terms.push(Terminator::Branch {
                cond: Cond::ALL[(c % 8) as usize],
                rs1: Reg::new(r1 % 16),
                rs2: Reg::new(r2 % 16),
                taken,
                fall: id + 1,
                p_taken: if far { 0.7 } else { 0.4 },
            });
        }
    }
    RawProgram::new(raw_blocks, terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn reorganized_programs_verify_clean(
        blocks in prop::collection::vec(prop::collection::vec(arb_gen_instr(), 0..8), 2..8),
        choices in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<bool>()), 8),
        md_pick in any::<u8>(),
    ) {
        prop_assume!(choices.len() >= blocks.len());
        // Roughly a third of the cases get a full multiply chain spliced
        // into a random block.
        let md_block = if md_pick % 3 == 0 {
            Some(md_pick as usize % blocks.len())
        } else {
            None
        };
        let raw = build_raw(blocks, choices, md_block);
        assert_verifies_clean(&raw);
    }
}

#[test]
fn call_return_and_diamond_shapes_verify_clean() {
    // Call/return: the link-register discipline and return-slot rules.
    let call = RawProgram::new(
        vec![
            RawBlock::new(vec![addi(1, 0, 21), addi(9, 0, 3)]),
            RawBlock::new(vec![compute(ComputeOp::AddU, 4, 3, 3)]),
            RawBlock::new(vec![compute(ComputeOp::AddU, 3, 1, 1), addi(9, 9, 40)]),
        ],
        vec![
            Terminator::Call {
                target: 2,
                link: Reg::LINK,
                ret_to: 1,
            },
            Terminator::Halt,
            Terminator::Return { link: Reg::LINK },
        ],
    );
    assert_verifies_clean(&call);

    // Diamond with a load feeding the join: delay pairs across both arms.
    let diamond = RawProgram::new(
        vec![
            RawBlock::new(vec![
                addi(20, 0, DATA_BASE),
                addi(1, 0, 100),
                addi(2, 0, 37),
            ]),
            RawBlock::new(vec![
                Instr::Ld {
                    rs1: Reg::new(20),
                    rd: Reg::new(5),
                    offset: 0,
                },
                compute(ComputeOp::Or, 6, 5, 2),
            ]),
            RawBlock::default(),
            RawBlock::new(vec![compute(ComputeOp::And, 5, 1, 2), addi(7, 5, 2)]),
            RawBlock::default(),
        ],
        vec![
            Terminator::Branch {
                cond: Cond::Lt,
                rs1: Reg::new(1),
                rs2: Reg::new(2),
                taken: 3,
                fall: 1,
                p_taken: 0.3,
            },
            Terminator::Jump(4),
            Terminator::Jump(4),
            Terminator::Jump(4),
            Terminator::Halt,
        ],
    );
    assert_verifies_clean(&diamond);
}
