//! The branch-scheme space of Table 1.

use std::fmt;

/// What the scheduler may do with branch delay slots.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SquashPolicy {
    /// Slots always execute (original MIPS): fill from before the branch,
    /// or with instructions provably harmless on both paths, else `nop`.
    NoSquash,
    /// Every branch squashes: slots are filled from the predicted path and
    /// die when the prediction is wrong. (*"The always squash scheme only
    /// uses the squash if go and squash if don't go actions."*)
    AlwaysSquash,
    /// Per-branch choice of whichever is cheaper — the scheme MIPS-X
    /// shipped. (*"The squash optional scheme includes the use of branches
    /// with no squash instructions in the slots as well as having branches
    /// with squashing."*)
    SquashOptional,
}

impl fmt::Display for SquashPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SquashPolicy::NoSquash => f.write_str("no squash"),
            SquashPolicy::AlwaysSquash => f.write_str("always squash"),
            SquashPolicy::SquashOptional => f.write_str("squash optional"),
        }
    }
}

/// One row of Table 1: a delay-slot count and a squash policy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BranchScheme {
    /// Branch delay slots (1 or 2).
    pub slots: usize,
    /// Slot-filling policy.
    pub squash: SquashPolicy,
}

impl BranchScheme {
    /// The scheme MIPS-X shipped: two slots, squash optional, with the
    /// full compare (*"The scheme we finally chose uses the full compare
    /// and squash optional with two slots."*)
    pub fn mipsx() -> BranchScheme {
        BranchScheme {
            slots: 2,
            squash: SquashPolicy::SquashOptional,
        }
    }

    /// All six rows of Table 1, in the paper's order.
    pub fn table1() -> [BranchScheme; 6] {
        [
            BranchScheme {
                slots: 2,
                squash: SquashPolicy::NoSquash,
            },
            BranchScheme {
                slots: 2,
                squash: SquashPolicy::AlwaysSquash,
            },
            BranchScheme {
                slots: 2,
                squash: SquashPolicy::SquashOptional,
            },
            BranchScheme {
                slots: 1,
                squash: SquashPolicy::NoSquash,
            },
            BranchScheme {
                slots: 1,
                squash: SquashPolicy::AlwaysSquash,
            },
            BranchScheme {
                slots: 1,
                squash: SquashPolicy::SquashOptional,
            },
        ]
    }

    /// The paper's measured average cycles per branch for this scheme
    /// (Table 1) — the reference values the reproduction is compared
    /// against.
    pub fn paper_cycles_per_branch(&self) -> f64 {
        match (self.slots, self.squash) {
            (2, SquashPolicy::NoSquash) => 2.0,
            (2, SquashPolicy::AlwaysSquash) => 1.5,
            (2, SquashPolicy::SquashOptional) => 1.3,
            (1, SquashPolicy::NoSquash) => 1.4,
            (1, SquashPolicy::AlwaysSquash) => 1.3,
            (1, SquashPolicy::SquashOptional) => 1.1,
            _ => f64::NAN,
        }
    }

    /// Validate the slot count.
    ///
    /// # Panics
    /// Panics unless `slots` is 1 or 2.
    pub fn validate(&self) {
        assert!(self.slots == 1 || self.slots == 2, "1 or 2 delay slots");
    }
}

impl fmt::Display for BranchScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-slot {}", self.slots, self.squash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows() {
        let rows = BranchScheme::table1();
        assert_eq!(rows.len(), 6);
        for r in rows {
            r.validate();
            assert!(r.paper_cycles_per_branch() >= 1.0);
        }
    }

    #[test]
    fn paper_values_match_table() {
        assert_eq!(BranchScheme::mipsx().paper_cycles_per_branch(), 1.3);
        assert_eq!(
            BranchScheme {
                slots: 2,
                squash: SquashPolicy::NoSquash
            }
            .paper_cycles_per_branch(),
            2.0
        );
        assert_eq!(
            BranchScheme {
                slots: 1,
                squash: SquashPolicy::SquashOptional
            }
            .paper_cycles_per_branch(),
            1.1
        );
    }

    #[test]
    fn display_reads_like_the_table() {
        assert_eq!(BranchScheme::mipsx().to_string(), "2-slot squash optional");
    }
}
