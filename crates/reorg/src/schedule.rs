//! Delay-slot scheduling.
//!
//! The scheduler works block-at-a-time over a [`RawProgram`]:
//!
//! 1. **Load-delay pass** — within each block, a load whose value is
//!    consumed by the very next instruction (at the ALU) gets an
//!    independent instruction pulled between them, or an explicit `nop`.
//!    These nops are the "other pipeline interlocks" of the paper's no-op
//!    statistic, and they are what balloons for Lisp's car/cdr chains.
//! 2. **Branch-slot pass** — per terminator, delay slots fill in the
//!    paper's priority order (hoist from before the branch; instructions
//!    from the destination or sequential path that are harmless the wrong
//!    way; with squashing, *any* instruction from the predicted path), and
//!    under [`SquashPolicy::SquashOptional`] each branch picks whichever
//!    option has the lower expected cost.
//!
//! The output is a real [`Program`] that runs on the cycle-accurate core
//! under [`InterlockPolicy::Detect`](mipsx_core::InterlockPolicy) — the
//! scheduling tests execute both the naive and the reorganized code and
//! require identical architectural results.

use std::error::Error;
use std::fmt;

use mipsx_asm::{Asm, AsmError, Program};
use mipsx_isa::{Instr, Reg, SquashMode};

use crate::liveness::{self, contains};
use crate::{BlockId, BranchScheme, RawProgram, SquashPolicy, Terminator};

/// Scheduling statistics for one reorganized program.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ScheduleReport {
    /// Conditional branches scheduled.
    pub branches: usize,
    /// Branches emitted with a squashing mode.
    pub squashing_branches: usize,
    /// Total delay slots emitted (branches, jumps, calls, returns).
    pub slots_total: usize,
    /// Slots filled by hoisting an instruction from before the transfer.
    pub filled_from_before: usize,
    /// Slots filled with (copies of) predicted-path / target instructions.
    pub filled_from_target: usize,
    /// Slots filled from the sequential path or cross-path-safe
    /// instructions (no-squash fills that needed liveness proof).
    pub filled_safe: usize,
    /// Slots left as explicit `nop`s.
    pub slot_nops: usize,
    /// `nop`s inserted by the load-delay pass.
    pub load_nops: usize,
    /// Whether the emitted program passed the static hazard verifier
    /// (`mipsx_verify`) with zero error-severity diagnostics.
    pub verified: bool,
    /// Total diagnostics (errors + warnings) the verifier reported.
    pub diagnostics: usize,
    /// Scheduling-quality findings (`mipsx_verify::quality`): missed slot
    /// fills, redundant nops, avoidable load stalls, zero-slack join
    /// hazards. All warnings — the schedule is legal, just improvable.
    pub quality_findings: usize,
}

impl ScheduleReport {
    /// Fraction of delay slots that hold useful instructions.
    pub fn fill_ratio(&self) -> f64 {
        if self.slots_total == 0 {
            0.0
        } else {
            1.0 - self.slot_nops as f64 / self.slots_total as f64
        }
    }
}

/// Errors from reorganization (all bubble up from program emission).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReorgError {
    /// The scheduled program could not be assembled (e.g. displacement
    /// overflow on a very large block layout).
    Emit(AsmError),
}

impl fmt::Display for ReorgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReorgError::Emit(e) => write!(f, "emitting scheduled program: {e}"),
        }
    }
}

impl Error for ReorgError {}

impl From<AsmError> for ReorgError {
    fn from(e: AsmError) -> ReorgError {
        ReorgError::Emit(e)
    }
}

/// The registers an instruction needs resolved at its ALU stage — the ones
/// subject to the load-delay interlock. A store's datum and `mvtc`'s datum
/// resolve a stage later (MEM) and are exempt.
fn alu_uses(instr: &Instr) -> Vec<Reg> {
    match *instr {
        Instr::St { rs1, .. } => vec![rs1],
        Instr::Mvtc { .. } => vec![],
        ref i => i.uses().collect(),
    }
}

/// Whether `instr` produces its result from memory (the load-delay rule).
fn load_class(instr: &Instr) -> bool {
    matches!(instr, Instr::Ld { .. } | Instr::Mvfc { .. })
}

/// Whether placing `next` immediately after `prev` creates a load-use
/// violation (a load's value consumed at the ALU one cycle later).
fn feeds_hazard(prev: &Instr, next: &Instr) -> bool {
    load_class(prev)
        && prev
            .def()
            .is_some_and(|d| !d.is_zero() && alu_uses(next).contains(&d))
}

/// Whether instruction `b` depends on or conflicts with `a` (cannot be
/// reordered across it).
fn conflicts(a: &Instr, b: &Instr) -> bool {
    let a_def = a.def();
    // RAW: b reads a's def.
    if let Some(d) = a_def {
        if !d.is_zero() && b.uses().any(|u| u == d) {
            return true;
        }
    }
    // WAR: b defines something a reads.
    if let Some(d) = b.def() {
        if !d.is_zero() && a.uses().any(|u| u == d) {
            return true;
        }
        // WAW.
        if a_def == Some(d) {
            return true;
        }
    }
    // Memory/system ordering: loads, stores, coprocessor traffic,
    // special-register access, and MD-stepping sequences keep their order.
    // (A potentially-trapping add may move — the reorganizer trades exact
    // trap location for schedule quality, as the original did.)
    fn ordered(i: &Instr) -> bool {
        i.is_load()
            || i.is_store()
            || i.is_coproc()
            || matches!(i, Instr::Movtos { .. } | Instr::Movfrs { .. })
            || matches!(i, Instr::Compute { op, .. } if op.touches_md())
    }
    ordered(a) && ordered(b)
}

/// The code reorganizer.
#[derive(Clone, Copy, Debug)]
pub struct Reorganizer {
    scheme: BranchScheme,
}

impl Reorganizer {
    /// A reorganizer for the given branch scheme.
    ///
    /// # Panics
    /// Panics if the scheme is invalid.
    pub fn new(scheme: BranchScheme) -> Reorganizer {
        scheme.validate();
        Reorganizer { scheme }
    }

    /// The scheme in use.
    pub fn scheme(&self) -> BranchScheme {
        self.scheme
    }

    /// Lower without any slot filling: every delay slot is an explicit
    /// `nop`, no squashing. The semantic reference for scheduling tests and
    /// the "unoptimized" baseline in experiments.
    ///
    /// # Errors
    /// Returns [`ReorgError::Emit`] if the program cannot be assembled.
    pub fn lower_naive(&self, raw: &RawProgram) -> Result<(Program, ScheduleReport), ReorgError> {
        self.lower(raw, false)
    }

    /// Run the full reorganizer: load-delay scheduling plus branch-slot
    /// filling under the configured scheme.
    ///
    /// # Errors
    /// Returns [`ReorgError::Emit`] if the program cannot be assembled.
    pub fn reorganize(&self, raw: &RawProgram) -> Result<(Program, ScheduleReport), ReorgError> {
        self.lower(raw, true)
    }

    fn lower(&self, raw: &RawProgram, fill: bool) -> Result<(Program, ScheduleReport), ReorgError> {
        raw.validate();
        let slots = self.scheme.slots;
        let live = liveness::analyze(raw);
        let preds = predecessor_counts(raw);
        let mut report = ScheduleReport::default();

        // Working copies: bodies may lose tail instructions (hoisting) or
        // head instructions (sequential-path moves).
        let mut bodies: Vec<Vec<Instr>> = raw.blocks.iter().map(|b| b.instrs.clone()).collect();
        // Scheduled slot contents and squash mode per block.
        let mut slot_fill: Vec<Vec<Instr>> = vec![Vec::new(); raw.len()];
        let mut squash_mode: Vec<SquashMode> = vec![SquashMode::NoSquash; raw.len()];
        // Retarget: skip the first `k` instructions of the transfer target.
        let mut retarget: Vec<usize> = vec![0; raw.len()];
        // The first `pinned[b]` instructions of block `b` were copied into a
        // predecessor's delay slots (with a retarget past them): they must
        // stay in place, or the skip would land in the wrong spot and the
        // copies would execute twice.
        let mut pinned: Vec<usize> = vec![0; raw.len()];

        // Pass 1: load-delay scheduling within each block.
        for (id, body) in bodies.iter_mut().enumerate() {
            report.load_nops += schedule_load_delays(body, &term_alu_uses(&raw.terms[id]));
        }

        // Pass 2: slot filling, in layout order.
        for id in 0..raw.len() {
            let term = raw.terms[id];
            match term {
                Terminator::Halt => {}
                Terminator::Branch {
                    taken,
                    fall,
                    p_taken,
                    rs1,
                    rs2,
                    ..
                } => {
                    report.branches += 1;
                    report.slots_total += slots;
                    if !fill {
                        slot_fill[id] = vec![Instr::Nop; slots];
                        report.slot_nops += slots;
                        continue;
                    }
                    let (filled, mode, skip) = self.fill_branch_slots(
                        id,
                        taken,
                        fall,
                        p_taken,
                        [rs1, rs2],
                        &mut bodies,
                        &live,
                        &preds,
                        &pinned,
                        &mut report,
                    );
                    slot_fill[id] = filled;
                    squash_mode[id] = mode;
                    retarget[id] = skip;
                    pinned[taken] = pinned[taken].max(skip);
                    if mode != SquashMode::NoSquash {
                        report.squashing_branches += 1;
                    }
                }
                Terminator::Jump(target) | Terminator::Call { target, .. } => {
                    report.slots_total += slots;
                    if !fill {
                        slot_fill[id] = vec![Instr::Nop; slots];
                        report.slot_nops += slots;
                        continue;
                    }
                    let protect: Vec<Reg> = match term {
                        Terminator::Call { link, .. } => vec![link],
                        _ => vec![],
                    };
                    // Unconditional transfers fill only by *moving* code
                    // from before the jump — the post-pass reorganizers of
                    // the era did not duplicate target code into jump
                    // slots, and returns/indirect jumps have no static
                    // target anyway. (Branches get destination copies via
                    // the squash machinery below, which is the paper's
                    // explicit mechanism.)
                    let mut filled =
                        hoist_from_before(&mut bodies[id], slots, &protect, &[], pinned[id]);
                    report.filled_from_before += filled.len();
                    // When the target has a single predecessor, its head
                    // may be *moved* (not copied) into the remaining slots.
                    let mut skip = 0;
                    if preds[target] <= 1 && pinned[target] == 0 && target != id {
                        while filled.len() < slots && skip < bodies[target].len() {
                            let candidate = bodies[target][skip];
                            if candidate.is_nop()
                                || (load_class(&candidate) && filled.len() == slots - 1)
                                || filled.last().is_some_and(|p| feeds_hazard(p, &candidate))
                            {
                                break;
                            }
                            filled.push(candidate);
                            skip += 1;
                            report.filled_from_target += 1;
                        }
                        bodies[target].drain(..skip);
                        skip = 0; // moved, not copied: no retarget needed
                    }
                    retarget[id] = skip;
                    while filled.len() < slots {
                        filled.push(Instr::Nop);
                        report.slot_nops += 1;
                    }
                    slot_fill[id] = filled;
                }
                Terminator::Return { link } => {
                    report.slots_total += slots;
                    if !fill {
                        slot_fill[id] = vec![Instr::Nop; slots];
                        report.slot_nops += slots;
                        continue;
                    }
                    let mut filled =
                        hoist_from_before(&mut bodies[id], slots, &[link], &[link], pinned[id]);
                    report.filled_from_before += filled.len();
                    while filled.len() < slots {
                        filled.push(Instr::Nop);
                        report.slot_nops += 1;
                    }
                    slot_fill[id] = filled;
                }
            }
        }

        // Pass 2.5: hoisting can orphan a load-delay pad — the consumer
        // moved into a delay slot, leaving its nop between the load and a
        // transfer that never reads the value. Trailing nops whose removal
        // provably creates no hazard are dropped. (The tail never overlaps
        // a prefix copied into a predecessor's squashing slots, which is
        // all `pinned` protects.)
        for id in 0..raw.len() {
            let uses = term_alu_uses(&raw.terms[id]);
            while bodies[id].len() > pinned[id].max(1) {
                let n = bodies[id].len();
                if !bodies[id][n - 1].is_nop() {
                    break;
                }
                let prev = bodies[id][n - 2];
                let pad_needed = load_class(&prev)
                    && prev
                        .def()
                        .is_some_and(|d| !d.is_zero() && uses.contains(&d));
                if pad_needed {
                    break;
                }
                bodies[id].pop();
                report.load_nops = report.load_nops.saturating_sub(1);
            }
        }

        // Pass 3: emission.
        let mut asm = Asm::new(0);
        // Labels: one per (block, instruction offset) that is ever targeted.
        let mut needed: Vec<(BlockId, usize)> = Vec::new();
        for (id, term) in raw.terms.iter().enumerate() {
            match *term {
                Terminator::Jump(t) | Terminator::Call { target: t, .. } => {
                    needed.push((t, retarget[id]))
                }
                Terminator::Branch { taken, .. } => needed.push((taken, retarget[id])),
                _ => {}
            }
        }
        needed.sort_unstable();
        needed.dedup();
        let labels: std::collections::HashMap<(BlockId, usize), mipsx_asm::Label> =
            needed.iter().map(|&key| (key, asm.new_label())).collect();

        for id in 0..raw.len() {
            for (offset, instr) in bodies[id].iter().enumerate() {
                if let Some(&l) = labels.get(&(id, offset)) {
                    asm.bind(l)?;
                }
                asm.emit(*instr);
            }
            // Labels at or past the end of the body bind just before the
            // terminator.
            for (&(b, off), &l) in &labels {
                if b == id && off >= bodies[id].len() {
                    asm.bind(l)?;
                }
            }
            match raw.terms[id] {
                Terminator::Halt => asm.emit(Instr::Halt),
                Terminator::Jump(t) => {
                    let key = (t, retarget[id].min(bodies[t].len()));
                    asm.jump(labels[&key]);
                }
                Terminator::Call { target, link, .. } => {
                    let key = (target, retarget[id].min(bodies[target].len()));
                    asm.call(labels[&key], link);
                }
                Terminator::Return { link } => asm.ret(link),
                Terminator::Branch {
                    cond,
                    rs1,
                    rs2,
                    taken,
                    ..
                } => {
                    let key = (taken, retarget[id].min(bodies[taken].len()));
                    asm.branch(cond, squash_mode[id], rs1, rs2, labels[&key]);
                }
            }
            for s in &slot_fill[id] {
                asm.emit(*s);
            }
        }
        let program = asm.finish()?;

        // Post-condition: every program this reorganizer emits must pass
        // the static hazard verifier. The report carries the result so
        // callers can assert legality without re-running the pass.
        let lint = self.verify_schedule(&program);
        report.verified = lint.is_clean();
        report.diagnostics = lint.diagnostics.len();
        report.quality_findings = self.quality_report(&program).diagnostics.len();
        debug_assert!(
            report.verified,
            "reorganizer emitted an illegal schedule:\n{lint}\n{program}"
        );
        Ok((program, report))
    }

    /// Run the static hazard verifier over a program under this
    /// reorganizer's branch scheme (delay-slot count). `reorganize` and
    /// `lower_naive` already call this and record the outcome in their
    /// [`ScheduleReport`]; it is public so hand-scheduled programs can be
    /// checked against the same contract.
    pub fn verify_schedule(&self, program: &Program) -> mipsx_verify::LintReport {
        mipsx_verify::verify(
            program,
            &mipsx_verify::VerifyConfig::for_slots(self.scheme.slots),
        )
    }

    /// Run only the scheduling-*quality* lints (missed-slot-fill,
    /// redundant-nop, avoidable-load-stall, cross-block-hazard-at-join)
    /// over a program under this reorganizer's branch scheme. A clean
    /// schedule wastes no issue slot the analyzer can prove fillable;
    /// `reorganize` records the count in [`ScheduleReport`].
    pub fn quality_report(&self, program: &Program) -> mipsx_verify::LintReport {
        mipsx_verify::quality(
            program,
            &mipsx_verify::VerifyConfig::for_slots(self.scheme.slots),
        )
    }

    /// Fill one branch's delay slots; returns the slot instructions, the
    /// squash mode, and how many target-head instructions to skip.
    #[allow(clippy::too_many_arguments)]
    fn fill_branch_slots(
        &self,
        id: BlockId,
        taken: BlockId,
        fall: BlockId,
        p_taken: f64,
        branch_sources: [Reg; 2],
        bodies: &mut [Vec<Instr>],
        live: &liveness::Liveness,
        preds: &[usize],
        pinned: &[usize],
        report: &mut ScheduleReport,
    ) -> (Vec<Instr>, SquashMode, usize) {
        let slots = self.scheme.slots;
        let predict_taken = p_taken >= 0.5;
        let p_correct = if predict_taken {
            p_taken
        } else {
            1.0 - p_taken
        };

        // Option A: no-squash fill.
        // 1. Hoist from before (simulated on a scratch copy so option B can
        //    still choose differently).
        let mut scratch = bodies[id].clone();
        let mut a_fill = hoist_from_before(
            &mut scratch,
            slots,
            &branch_sources,
            &branch_sources,
            pinned[id],
        );
        let a_before = a_fill.len();
        // 2. Copies from the taken-path head that are provably harmless on
        //    the fall path (dead destination, no side effects).
        let mut a_skip = 0;
        // For a self-loop, head copies may overlap the hoisted tail; only
        // one of the two sources may apply.
        while (taken != id || a_before == 0) && a_fill.len() < slots && a_skip < bodies[taken].len()
        {
            let candidate = bodies[taken][a_skip];
            let safe = !candidate.has_side_effects()
                && !candidate.is_nop()
                && candidate
                    .def()
                    .is_none_or(|d| d.is_zero() || !contains(live.live_in[fall], d))
                && (!load_class(&candidate) || a_fill.len() != slots - 1)
                && a_fill.last().is_none_or(|p| !feeds_hazard(p, &candidate));
            if !safe {
                break;
            }
            a_fill.push(candidate);
            a_skip += 1;
        }
        let a_safe = a_fill.len() - a_before;
        // 3. Sequential-path move: only with a single predecessor, side
        //    effect free, dead on the taken path, and not a load.
        let mut a_fall_moved = 0;
        if preds[fall] <= 1 && pinned[fall] == 0 && a_skip == 0 {
            while a_fill.len() < slots && a_fall_moved < bodies[fall].len() {
                let candidate = bodies[fall][a_fall_moved];
                let safe = !candidate.has_side_effects()
                    && !candidate.is_nop()
                    && !load_class(&candidate)
                    && candidate
                        .def()
                        .is_none_or(|d| d.is_zero() || !contains(live.live_in[taken], d));
                if !safe {
                    break;
                }
                a_fill.push(candidate);
                a_fall_moved += 1;
            }
        }
        let a_cost = (slots - a_fill.len()) as f64;

        // Option B: squashing fill — any instruction from the predicted
        // path, squashed if the branch goes the other way.
        let (b_fill, b_mode, b_skip, b_cost) = if predict_taken {
            let mut fill: Vec<Instr> = Vec::new();
            let mut skip = 0;
            while fill.len() < slots && skip < bodies[taken].len() {
                let candidate = bodies[taken][skip];
                // Squashed slots are annulled via the destination-register
                // kill line, so only instructions the kill line can reach
                // (plain register writes) may ride in them.
                if candidate.is_nop()
                    || !mipsx_verify::squash_safe(&candidate)
                    || fill.last().is_some_and(|p| feeds_hazard(p, &candidate))
                {
                    break;
                }
                fill.push(candidate);
                skip += 1;
            }
            let filled = fill.len();
            let cost = filled as f64 * (1.0 - p_correct) + (slots - filled) as f64;
            (fill, SquashMode::SquashIfNotTaken, skip, cost)
        } else if !predict_taken && preds[fall] <= 1 && pinned[fall] == 0 {
            // Predict not-taken: move the sequential head into the slots
            // (squash-if-go kills them when the branch does take).
            let mut fill = Vec::new();
            let mut moved = 0;
            while fill.len() < slots && moved < bodies[fall].len() {
                let candidate = bodies[fall][moved];
                if candidate.is_nop()
                    || !mipsx_verify::squash_safe(&candidate)
                    || (load_class(&candidate) && fill.len() == slots - 1)
                {
                    break;
                }
                fill.push(candidate);
                moved += 1;
            }
            let filled = fill.len();
            let cost = filled as f64 * (1.0 - p_correct) + (slots - filled) as f64;
            // Encode the move count in skip-space: we reuse `moved` by
            // draining the fall head below.
            (fill, SquashMode::SquashIfGo, moved, cost)
        } else {
            (Vec::new(), SquashMode::NoSquash, 0, f64::INFINITY)
        };

        let use_squash = match self.scheme.squash {
            SquashPolicy::NoSquash => false,
            SquashPolicy::AlwaysSquash => b_cost.is_finite(),
            SquashPolicy::SquashOptional => b_cost < a_cost,
        };

        if use_squash {
            let mut fill = b_fill;
            match b_mode {
                SquashMode::SquashIfNotTaken => {
                    report.filled_from_target += fill.len();
                }
                SquashMode::SquashIfGo => {
                    // Actually remove the moved instructions from the fall
                    // head.
                    bodies[fall].drain(..b_skip);
                    report.filled_from_target += fill.len();
                }
                SquashMode::NoSquash => {}
            }
            while fill.len() < slots {
                fill.push(Instr::Nop);
                report.slot_nops += 1;
            }
            let skip = if b_mode == SquashMode::SquashIfNotTaken {
                b_skip
            } else {
                0
            };
            (fill, b_mode, skip)
        } else {
            // Commit option A: redo the hoist on the real body.
            let mut fill = hoist_from_before(
                &mut bodies[id],
                slots,
                &branch_sources,
                &branch_sources,
                pinned[id],
            );
            debug_assert_eq!(fill.len(), a_before);
            report.filled_from_before += a_before;
            fill.extend_from_slice(&bodies[taken][..a_safe]);
            report.filled_safe += a_safe;
            if a_fall_moved > 0 {
                fill.extend(bodies[fall].drain(..a_fall_moved));
                report.filled_safe += a_fall_moved;
            }
            while fill.len() < slots {
                fill.push(Instr::Nop);
                report.slot_nops += 1;
            }
            (fill, SquashMode::NoSquash, a_skip)
        }
    }
}

/// The ALU-resolved registers a terminator reads (for the load-delay pass:
/// a load feeding a branch one instruction later is a violation).
fn term_alu_uses(term: &Terminator) -> Vec<Reg> {
    match *term {
        Terminator::Branch { rs1, rs2, .. } => vec![rs1, rs2],
        Terminator::Return { link } => vec![link],
        _ => vec![],
    }
}

/// Count predecessors of each block (including implicit layout edges via
/// `fall`/`ret_to`, which appear in `successors`).
fn predecessor_counts(raw: &RawProgram) -> Vec<usize> {
    let mut preds = vec![0usize; raw.len()];
    for term in &raw.terms {
        for s in term.successors() {
            preds[s] += 1;
        }
    }
    preds
}

/// Insert independent instructions or `nop`s so that no load is followed
/// immediately by an ALU consumer of its value. Returns inserted nop count.
fn schedule_load_delays(body: &mut Vec<Instr>, term_uses: &[Reg]) -> usize {
    let mut nops = 0;
    let mut i = 0;
    while i < body.len() {
        let instr = body[i];
        if !load_class(&instr) {
            i += 1;
            continue;
        }
        let Some(def) = instr.def() else {
            i += 1;
            continue;
        };
        if def.is_zero() {
            i += 1;
            continue;
        }
        let consumer_uses_def = if i + 1 < body.len() {
            alu_uses(&body[i + 1]).contains(&def)
        } else {
            term_uses.contains(&def)
        };
        if !consumer_uses_def {
            i += 1;
            continue;
        }
        // Try to pull an independent instruction from later in the block
        // into the delay slot.
        let mut filled = false;
        for j in i + 2..body.len() {
            let candidate = body[j];
            // The candidate must commute with everything it jumps over.
            let independent = (i + 1..j)
                .all(|k| !conflicts(&body[k], &candidate) && !conflicts(&candidate, &body[k]))
                && !conflicts(&instr, &candidate)
                && !alu_uses(&candidate).contains(&def);
            // Pulling a load forward may create a fresh hazard with its own
            // next instruction; keep it simple and skip loads.
            if independent && !load_class(&candidate) {
                body.remove(j);
                body.insert(i + 1, candidate);
                filled = true;
                break;
            }
        }
        if !filled {
            body.insert(i + 1, Instr::Nop);
            nops += 1;
        }
        i += 1;
    }
    nops
}

/// Hoist up to `max` instructions from the block tail into delay slots.
/// Hoisted instructions must not define any register in `protect` (the
/// transfer's sources) and must not leave a load feeding a `hazard_check`
/// register at distance one. Loads never land in the final slot.
fn hoist_from_before(
    body: &mut Vec<Instr>,
    max: usize,
    protect: &[Reg],
    hazard_check: &[Reg],
    min_len: usize,
) -> Vec<Instr> {
    let mut hoisted: Vec<Instr> = Vec::new();
    while hoisted.len() < max && body.len() > min_len {
        let Some(&candidate) = body.last() else {
            break;
        };
        if candidate.is_nop() {
            // A scheduling nop guards a load delay; moving it changes
            // distances. Leave it.
            break;
        }
        // Must not produce a value the transfer itself reads.
        if candidate
            .def()
            .is_some_and(|d| !d.is_zero() && protect.contains(&d))
        {
            break;
        }
        // A hoisted load would land one instruction from the transfer
        // target's head; the final slot is forbidden to loads.
        if load_class(&candidate) && hoisted.is_empty() {
            break;
        }
        // After removal the new tail must not be a load feeding the
        // transfer's compare at distance one.
        let new_tail = body.len().checked_sub(2).map(|k| body[k]);
        if let Some(t) = new_tail {
            if load_class(&t)
                && t.def()
                    .is_some_and(|d| !d.is_zero() && hazard_check.contains(&d))
            {
                break;
            }
        }
        body.pop();
        hoisted.insert(0, candidate); // preserve program order in the slots
    }
    hoisted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RawBlock;
    use mipsx_isa::{ComputeOp, Cond};

    fn add(rd: u8, rs1: u8, rs2: u8) -> Instr {
        Instr::Compute {
            op: ComputeOp::Add,
            rs1: Reg::new(rs1),
            rs2: Reg::new(rs2),
            rd: Reg::new(rd),
            shamt: 0,
        }
    }

    fn ld(rd: u8, base: u8, off: i32) -> Instr {
        Instr::Ld {
            rs1: Reg::new(base),
            rd: Reg::new(rd),
            offset: off,
        }
    }

    #[test]
    fn load_delay_gets_a_nop() {
        let mut body = vec![ld(1, 2, 0), add(3, 1, 1)];
        let nops = schedule_load_delays(&mut body, &[]);
        assert_eq!(nops, 1);
        assert_eq!(body[1], Instr::Nop);
    }

    #[test]
    fn load_delay_filled_by_independent_instruction() {
        let mut body = vec![ld(1, 2, 0), add(3, 1, 1), add(4, 5, 6)];
        let nops = schedule_load_delays(&mut body, &[]);
        assert_eq!(nops, 0);
        assert_eq!(body[1], add(4, 5, 6));
        assert_eq!(body[2], add(3, 1, 1));
    }

    #[test]
    fn load_feeding_branch_gets_a_nop() {
        let mut body = vec![ld(1, 2, 0)];
        let nops = schedule_load_delays(&mut body, &[Reg::new(1)]);
        assert_eq!(nops, 1);
        assert_eq!(body.last(), Some(&Instr::Nop));
    }

    #[test]
    fn independent_load_pair_is_untouched() {
        let mut body = vec![ld(1, 2, 0), ld(3, 2, 1), add(4, 1, 3)];
        let nops = schedule_load_delays(&mut body, &[]);
        // ld r3 doesn't use r1; add is after ld r3 and uses r3 -> needs a
        // nop for the second hazard only.
        assert_eq!(nops, 1);
    }

    #[test]
    fn hoist_takes_tail_in_order() {
        let mut body = vec![add(1, 2, 3), add(4, 5, 6), add(7, 8, 9)];
        let hoisted = hoist_from_before(&mut body, 2, &[], &[], 0);
        assert_eq!(hoisted, vec![add(4, 5, 6), add(7, 8, 9)]);
        assert_eq!(body, vec![add(1, 2, 3)]);
    }

    #[test]
    fn hoist_respects_protected_registers() {
        let mut body = vec![add(1, 2, 3), add(4, 5, 6)];
        let hoisted = hoist_from_before(&mut body, 2, &[Reg::new(4)], &[], 0);
        assert!(hoisted.is_empty(), "tail defines a branch source");
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn hoist_never_puts_load_in_final_slot() {
        let mut body = vec![add(1, 2, 3), ld(4, 5, 0)];
        let hoisted = hoist_from_before(&mut body, 2, &[], &[], 0);
        assert!(hoisted.is_empty());
    }

    fn simple_loop() -> RawProgram {
        // b0: r1 = 5; r2 = 0
        // b1: r2 += r1; r1 -= 1; if r1 != 0 goto b1
        // b2: halt
        RawProgram::new(
            vec![
                RawBlock::new(vec![
                    Instr::Addi {
                        rs1: Reg::ZERO,
                        rd: Reg::new(1),
                        imm: 5,
                    },
                    Instr::Addi {
                        rs1: Reg::ZERO,
                        rd: Reg::new(2),
                        imm: 0,
                    },
                ]),
                RawBlock::new(vec![
                    add(2, 2, 1),
                    Instr::Addi {
                        rs1: Reg::new(1),
                        rd: Reg::new(1),
                        imm: -1,
                    },
                ]),
                RawBlock::default(),
            ],
            vec![
                Terminator::Jump(1),
                Terminator::Branch {
                    cond: Cond::Ne,
                    rs1: Reg::new(1),
                    rs2: Reg::ZERO,
                    taken: 1,
                    fall: 2,
                    p_taken: 0.8,
                },
                Terminator::Halt,
            ],
        )
    }

    #[test]
    fn naive_lowering_is_all_nops() {
        let r = Reorganizer::new(BranchScheme::mipsx());
        let (program, report) = r.lower_naive(&simple_loop()).unwrap();
        assert_eq!(report.slot_nops, report.slots_total);
        assert_eq!(report.fill_ratio(), 0.0);
        assert!(program.static_nop_count() >= report.slot_nops);
    }

    #[test]
    fn reorganized_program_fills_slots() {
        let r = Reorganizer::new(BranchScheme::mipsx());
        let (_, report) = r.reorganize(&simple_loop()).unwrap();
        assert!(
            report.fill_ratio() > 0.0,
            "some slots must fill: {report:?}"
        );
        assert_eq!(report.branches, 1);
    }

    #[test]
    fn always_squash_marks_every_branch() {
        let r = Reorganizer::new(BranchScheme {
            slots: 2,
            squash: SquashPolicy::AlwaysSquash,
        });
        let (_, report) = r.reorganize(&simple_loop()).unwrap();
        assert_eq!(report.squashing_branches, report.branches);
    }

    #[test]
    fn no_squash_never_marks() {
        let r = Reorganizer::new(BranchScheme {
            slots: 2,
            squash: SquashPolicy::NoSquash,
        });
        let (_, report) = r.reorganize(&simple_loop()).unwrap();
        assert_eq!(report.squashing_branches, 0);
    }
}
