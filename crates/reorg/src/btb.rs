//! The branch cache (branch target buffer) that MIPS-X rejected.
//!
//! *"There were two prediction algorithms tried: branch cache, and static
//! prediction. The branch cache was quickly discarded when we discovered
//! that it had to be fairly large (much greater than 16 entries) to get a
//! high hit rate. It would also affect the size of our instruction cache.
//! Besides, it never did much better than static prediction and was much
//! more complex."*
//!
//! This module reruns that evaluation: a direct-mapped branch cache of
//! configurable size with 2-bit counters, driven by a branch event trace,
//! compared against static predict-taken.

/// One dynamic branch event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BranchEvent {
    /// Address of the branch instruction.
    pub pc: u32,
    /// Whether it took.
    pub taken: bool,
}

/// Outcome of one prediction-policy run over a trace.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct PredictionStats {
    /// Branch events processed.
    pub branches: u64,
    /// Correct direction predictions.
    pub correct: u64,
    /// Events whose branch was resident in the cache (1.0 for static
    /// prediction, which needs no storage).
    pub hits: u64,
}

impl PredictionStats {
    /// Fraction of branches predicted correctly.
    pub fn accuracy(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.correct as f64 / self.branches as f64
        }
    }

    /// Fraction of branches found in the cache.
    pub fn hit_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.hits as f64 / self.branches as f64
        }
    }
}

/// A direct-mapped branch cache with 2-bit saturating direction counters.
///
/// A miss predicts the static default (taken) and allocates the entry.
#[derive(Clone, Debug)]
pub struct BranchCache {
    /// `(tag, counter)` per entry; counter ≥ 2 predicts taken.
    entries: Vec<Option<(u32, u8)>>,
}

impl BranchCache {
    /// A branch cache with `entries` slots.
    ///
    /// # Panics
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> BranchCache {
        assert!(
            entries.is_power_of_two(),
            "entry count must be a power of two"
        );
        BranchCache {
            entries: vec![None; entries],
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache has no entries (never true — construction demands
    /// a power of two).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Predict and then train on one event. Returns `(hit, predicted)`.
    pub fn access(&mut self, event: BranchEvent) -> (bool, bool) {
        let index = (event.pc as usize) & (self.entries.len() - 1);
        let tag = event.pc;
        let (hit, predicted) = match self.entries[index] {
            Some((t, counter)) if t == tag => (true, counter >= 2),
            _ => (false, true), // static default: predict taken
        };
        // Train.
        let counter = match self.entries[index] {
            Some((t, c)) if t == tag => c,
            _ => 2, // weakly taken on allocate
        };
        let trained = if event.taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        self.entries[index] = Some((tag, trained));
        (hit, predicted)
    }

    /// Run a whole trace.
    pub fn simulate<I: IntoIterator<Item = BranchEvent>>(&mut self, trace: I) -> PredictionStats {
        let mut stats = PredictionStats::default();
        for event in trace {
            let (hit, predicted) = self.access(event);
            stats.branches += 1;
            stats.hits += hit as u64;
            stats.correct += (predicted == event.taken) as u64;
        }
        stats
    }
}

/// Static prediction: always predict taken (*"in the static case most
/// branches go"*).
pub fn simulate_static<I: IntoIterator<Item = BranchEvent>>(trace: I) -> PredictionStats {
    let mut stats = PredictionStats::default();
    for event in trace {
        stats.branches += 1;
        stats.hits += 1;
        stats.correct += event.taken as u64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopy_trace(branches: u32, iters: u32) -> Vec<BranchEvent> {
        // `branches` distinct backward branches, each taking (iters-1)
        // times then falling through once.
        let mut t = Vec::new();
        for _ in 0..iters {
            for b in 0..branches {
                t.push(BranchEvent {
                    pc: b * 97 + 5,
                    taken: true,
                });
            }
        }
        for b in 0..branches {
            t.push(BranchEvent {
                pc: b * 97 + 5,
                taken: false,
            });
        }
        t
    }

    #[test]
    fn static_accuracy_equals_taken_fraction() {
        let trace = loopy_trace(4, 9);
        let s = simulate_static(trace.iter().copied());
        assert_eq!(s.branches, 40);
        assert!((s.accuracy() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn big_cache_hits_small_cache_misses() {
        // 64 distinct branches: a 16-entry cache thrashes, a 256-entry one
        // holds them all after the first pass.
        let trace = loopy_trace(64, 10);
        let small = BranchCache::new(16).simulate(trace.iter().copied());
        let big = BranchCache::new(256).simulate(trace.iter().copied());
        assert!(
            big.hit_ratio() > small.hit_ratio() + 0.2,
            "big {} vs small {}",
            big.hit_ratio(),
            small.hit_ratio()
        );
    }

    #[test]
    fn branch_cache_never_much_better_than_static_on_loopy_code() {
        // The paper's observation: on mostly-taken branch streams the
        // branch cache cannot beat predict-taken by much.
        let trace = loopy_trace(32, 19); // 95% taken
        let static_acc = simulate_static(trace.iter().copied()).accuracy();
        let btb_acc = BranchCache::new(1024)
            .simulate(trace.iter().copied())
            .accuracy();
        assert!(
            btb_acc <= static_acc + 0.02,
            "btb {btb_acc} vs static {static_acc}"
        );
    }

    #[test]
    fn counters_learn_a_not_taken_branch() {
        let mut cache = BranchCache::new(16);
        let e = BranchEvent {
            pc: 4,
            taken: false,
        };
        // First access allocates (predicts taken, wrong), then learns.
        let (_, p1) = cache.access(e);
        let (_, p2) = cache.access(e);
        let (_, p3) = cache.access(e);
        assert!(p1, "cold prediction is the static default");
        // After two not-taken outcomes the counter reaches 0 -> predict
        // not-taken.
        assert!(!p2 || !p3);
        let s = cache.simulate(std::iter::repeat_n(e, 100));
        assert!(s.accuracy() > 0.99);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn entries_must_be_power_of_two() {
        let _ = BranchCache::new(12);
    }
}
