//! Unscheduled basic-block programs — the reorganizer's input.

use mipsx_isa::{Cond, Instr, Reg};

/// Index of a basic block within a [`RawProgram`].
pub type BlockId = usize;

/// How a basic block ends.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Terminator {
    /// Stop the machine.
    Halt,
    /// Unconditional jump to a block.
    Jump(BlockId),
    /// Conditional compare-and-branch.
    Branch {
        /// The comparison.
        cond: Cond,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
        /// Block executed when the condition holds.
        taken: BlockId,
        /// Block executed otherwise — must be laid out immediately after
        /// this block.
        fall: BlockId,
        /// Profile estimate of the probability the branch takes (used by
        /// static prediction; 0.65 is the calibrated default — *"in the
        /// static case most branches go"*).
        p_taken: f64,
    },
    /// Subroutine call; execution resumes at `ret_to`, which must be laid
    /// out immediately after this block (the hardware link register points
    /// past the jump's delay slots).
    Call {
        /// Callee entry block.
        target: BlockId,
        /// Link register receiving the return address.
        link: Reg,
        /// Continuation block.
        ret_to: BlockId,
    },
    /// Indirect return through a link register.
    Return {
        /// The link register.
        link: Reg,
    },
}

impl Terminator {
    /// Successor blocks in layout-relevant order.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Halt | Terminator::Return { .. } => vec![],
            Terminator::Jump(t) => vec![t],
            Terminator::Branch { taken, fall, .. } => vec![taken, fall],
            Terminator::Call { target, ret_to, .. } => vec![target, ret_to],
        }
    }

    /// The registers the terminator itself reads.
    pub fn uses(&self) -> Vec<Reg> {
        match *self {
            Terminator::Branch { rs1, rs2, .. } => vec![rs1, rs2],
            Terminator::Return { link } => vec![link],
            _ => vec![],
        }
    }

    /// The register the terminator writes (a call's link register).
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Terminator::Call { link, .. } => Some(link),
            _ => None,
        }
    }
}

/// One basic block: straight-line instructions plus a terminator.
///
/// The body must not contain control transfers (`Instr::is_control`) or
/// `halt` — those belong in the [`Terminator`].
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RawBlock {
    /// Straight-line body.
    pub instrs: Vec<Instr>,
}

impl RawBlock {
    /// A block with the given body.
    pub fn new(instrs: Vec<Instr>) -> RawBlock {
        RawBlock { instrs }
    }
}

/// An unscheduled program: basic blocks in layout order.
///
/// Layout invariants (checked by [`RawProgram::validate`]):
/// - a `Branch`'s `fall` block and a `Call`'s `ret_to` block are laid out
///   immediately after their block;
/// - block bodies contain no control instructions;
/// - all referenced block ids exist.
#[derive(Clone, PartialEq, Debug)]
pub struct RawProgram {
    /// Block bodies, in layout order.
    pub blocks: Vec<RawBlock>,
    /// Terminator of each block (parallel to `blocks`).
    pub terms: Vec<Terminator>,
}

impl RawProgram {
    /// Build and validate a program.
    ///
    /// # Panics
    /// Panics if the layout invariants are violated — these are programming
    /// errors in the generator, not data errors.
    pub fn new(blocks: Vec<RawBlock>, terms: Vec<Terminator>) -> RawProgram {
        let p = RawProgram { blocks, terms };
        p.validate();
        p
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total body instructions (excluding terminators).
    pub fn body_len(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Check the layout invariants.
    ///
    /// # Panics
    /// See [`RawProgram::new`].
    pub fn validate(&self) {
        assert_eq!(self.blocks.len(), self.terms.len(), "blocks/terms length");
        for (id, term) in self.terms.iter().enumerate() {
            for s in term.successors() {
                assert!(
                    s < self.blocks.len(),
                    "block {id}: successor {s} out of range"
                );
            }
            match *term {
                Terminator::Branch { fall, .. } => {
                    assert_eq!(fall, id + 1, "block {id}: fall-through must be next block");
                }
                Terminator::Call { ret_to, .. } => {
                    assert_eq!(
                        ret_to,
                        id + 1,
                        "block {id}: call continuation must be next block"
                    );
                }
                _ => {}
            }
        }
        for (id, block) in self.blocks.iter().enumerate() {
            for i in &block.instrs {
                assert!(
                    !i.is_control() && !matches!(i, Instr::Halt),
                    "block {id}: control instruction {i} in body"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(rd: u8, rs1: u8, rs2: u8) -> Instr {
        Instr::Compute {
            op: mipsx_isa::ComputeOp::Add,
            rs1: Reg::new(rs1),
            rs2: Reg::new(rs2),
            rd: Reg::new(rd),
            shamt: 0,
        }
    }

    #[test]
    fn valid_program_constructs() {
        let p = RawProgram::new(
            vec![RawBlock::new(vec![add(1, 2, 3)]), RawBlock::default()],
            vec![
                Terminator::Branch {
                    cond: Cond::Eq,
                    rs1: Reg::new(1),
                    rs2: Reg::ZERO,
                    taken: 1,
                    fall: 1,
                    p_taken: 0.5,
                },
                Terminator::Halt,
            ],
        );
        assert_eq!(p.len(), 2);
        assert_eq!(p.body_len(), 1);
    }

    #[test]
    #[should_panic(expected = "fall-through must be next block")]
    fn branch_fall_must_be_adjacent() {
        let _ = RawProgram::new(
            vec![
                RawBlock::default(),
                RawBlock::default(),
                RawBlock::default(),
            ],
            vec![
                Terminator::Branch {
                    cond: Cond::Eq,
                    rs1: Reg::ZERO,
                    rs2: Reg::ZERO,
                    taken: 2,
                    fall: 2, // wrong: must be 1
                    p_taken: 0.5,
                },
                Terminator::Halt,
                Terminator::Halt,
            ],
        );
    }

    #[test]
    #[should_panic(expected = "control instruction")]
    fn body_must_be_straight_line() {
        let _ = RawProgram::new(
            vec![RawBlock::new(vec![Instr::Jpc])],
            vec![Terminator::Halt],
        );
    }

    #[test]
    fn terminator_dataflow() {
        let b = Terminator::Branch {
            cond: Cond::Lt,
            rs1: Reg::new(4),
            rs2: Reg::new(5),
            taken: 0,
            fall: 1,
            p_taken: 0.9,
        };
        assert_eq!(b.uses(), vec![Reg::new(4), Reg::new(5)]);
        assert_eq!(b.def(), None);
        let c = Terminator::Call {
            target: 0,
            link: Reg::LINK,
            ret_to: 1,
        };
        assert_eq!(c.def(), Some(Reg::LINK));
        assert_eq!(c.successors(), vec![0, 1]);
    }
}
