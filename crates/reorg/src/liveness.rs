//! Register liveness over the basic-block graph.
//!
//! The no-squash slot filler needs to know whether an instruction hoisted
//! from one arm of a branch is harmless on the other arm — i.e. whether its
//! destination register is **dead** there. With 32 registers a live set is
//! a single `u32` mask, and the classic backward fixed point converges in a
//! few sweeps.

use mipsx_isa::{Instr, InstrMeta, Reg};

use crate::{RawProgram, Terminator};

/// Bitmask of live registers (`bit i` ⇔ `r<i>` live). `r0` is never
/// considered live — it is constant.
pub type RegSet = u32;

/// Set membership test.
#[inline]
pub fn contains(set: RegSet, reg: Reg) -> bool {
    !reg.is_zero() && set & (1 << reg.index()) != 0
}

fn insert(set: &mut RegSet, reg: Reg) {
    if !reg.is_zero() {
        *set |= 1 << reg.index();
    }
}

fn remove(set: &mut RegSet, reg: Reg) {
    *set &= !(1 << reg.index());
}

/// Per-block liveness solution.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<RegSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<RegSet>,
}

/// Transfer one instruction backward through a live set: kill the def,
/// then gen the uses, straight off the instruction's canonical
/// [`InstrMeta`] masks (which already exclude `r0`).
pub fn step_backward(live: &mut RegSet, instr: &Instr) {
    let m = InstrMeta::of(*instr);
    *live &= !m.def_mask;
    *live |= m.use_mask;
}

/// Compute liveness for a whole program.
///
/// Calls are treated conservatively: a `Call` makes **all** registers live
/// (the callee may read anything), and `Return`/`Halt` leave all registers
/// live at exit (the caller's continuation is not tracked
/// interprocedurally). This errs toward filling fewer cross-path slots,
/// never toward breaking a program.
pub fn analyze(program: &RawProgram) -> Liveness {
    let n = program.len();
    let mut live_in = vec![0u32; n];
    let mut live_out = vec![0u32; n];
    // All-live at the boundary terminators (conservative).
    const ALL: RegSet = !1; // every register except r0

    let mut changed = true;
    while changed {
        changed = false;
        for id in (0..n).rev() {
            let term = &program.terms[id];
            let mut out = match term {
                Terminator::Halt | Terminator::Return { .. } => ALL,
                Terminator::Call { .. } => ALL,
                _ => term.successors().iter().fold(0, |acc, &s| acc | live_in[s]),
            };
            if out != live_out[id] {
                live_out[id] = out;
                changed = true;
            }
            // Terminator's own dataflow.
            if let Some(d) = term.def() {
                remove(&mut out, d);
            }
            for u in term.uses() {
                insert(&mut out, u);
            }
            // Body, backward.
            for instr in program.blocks[id].instrs.iter().rev() {
                step_backward(&mut out, instr);
            }
            if out != live_in[id] {
                live_in[id] = out;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RawBlock;
    use mipsx_isa::{ComputeOp, Cond};

    fn add(rd: u8, rs1: u8, rs2: u8) -> Instr {
        Instr::Compute {
            op: ComputeOp::Add,
            rs1: Reg::new(rs1),
            rs2: Reg::new(rs2),
            rd: Reg::new(rd),
            shamt: 0,
        }
    }

    #[test]
    fn straight_line_liveness() {
        // Block 0: r3 = r1 + r2, branch on r3; block 1 halts.
        let p = RawProgram::new(
            vec![RawBlock::new(vec![add(3, 1, 2)]), RawBlock::default()],
            vec![
                Terminator::Branch {
                    cond: Cond::Ne,
                    rs1: Reg::new(3),
                    rs2: Reg::ZERO,
                    taken: 1,
                    fall: 1,
                    p_taken: 0.5,
                },
                Terminator::Halt,
            ],
        );
        let l = analyze(&p);
        assert!(contains(l.live_in[0], Reg::new(1)));
        assert!(contains(l.live_in[0], Reg::new(2)));
        // r3 is defined before use — not live-in.
        assert!(!contains(l.live_in[0], Reg::new(3)));
    }

    #[test]
    fn r0_is_never_live() {
        let mut set = 0;
        insert(&mut set, Reg::ZERO);
        assert_eq!(set, 0);
        assert!(!contains(u32::MAX, Reg::ZERO));
    }

    #[test]
    fn loop_reaches_fixed_point() {
        // Block 0 -> branch back to 0 or fall to 1; r5 used in the loop
        // body, defined nowhere: live-in everywhere.
        let p = RawProgram::new(
            vec![RawBlock::new(vec![add(6, 5, 6)]), RawBlock::default()],
            vec![
                Terminator::Branch {
                    cond: Cond::Ne,
                    rs1: Reg::new(6),
                    rs2: Reg::ZERO,
                    taken: 0,
                    fall: 1,
                    p_taken: 0.9,
                },
                Terminator::Halt,
            ],
        );
        let l = analyze(&p);
        assert!(contains(l.live_in[0], Reg::new(5)));
        assert!(contains(l.live_in[0], Reg::new(6)));
    }

    /// `step_backward` over every instruction class the workload and
    /// fuzzer generators can emit: the verifier and the slot filler both
    /// lean on these def/use sets, so each class gets an explicit check.
    #[test]
    fn def_use_sets_per_instruction_class() {
        use mipsx_isa::SpecialReg;
        let r = Reg::new;
        // (instr, expected def, expected uses)
        let cases: Vec<(Instr, Option<Reg>, Vec<Reg>)> = vec![
            (
                Instr::Ld {
                    rs1: r(2),
                    rd: r(1),
                    offset: 4,
                },
                Some(r(1)),
                vec![r(2)],
            ),
            (
                Instr::St {
                    rs1: r(2),
                    rsrc: r(3),
                    offset: -1,
                },
                None,
                vec![r(2), r(3)],
            ),
            (
                Instr::Addi {
                    rs1: r(4),
                    rd: r(5),
                    imm: 7,
                },
                Some(r(5)),
                vec![r(4)],
            ),
            (add(6, 7, 8), Some(r(6)), vec![r(7), r(8)]),
            (
                // Shifts read only rs1; rs2 is ignored by the funnel setup.
                Instr::Compute {
                    op: ComputeOp::Sll,
                    rs1: r(9),
                    rs2: r(10),
                    rd: r(11),
                    shamt: 3,
                },
                Some(r(11)),
                vec![r(9)],
            ),
            (
                Instr::Jspci {
                    rs1: r(31),
                    rd: r(12),
                    imm: 0,
                },
                Some(r(12)),
                vec![r(31)],
            ),
            (
                Instr::Mvtc {
                    rs: r(13),
                    cop: 1,
                    op: 2,
                },
                None,
                vec![r(13)],
            ),
            (
                Instr::Mvfc {
                    rd: r(14),
                    cop: 1,
                    op: 2,
                },
                Some(r(14)),
                vec![],
            ),
            (
                Instr::Ldf {
                    rs1: r(15),
                    fr: 0,
                    offset: 0,
                },
                None,
                vec![r(15)],
            ),
            (
                Instr::Stf {
                    rs1: r(16),
                    fr: 0,
                    offset: 0,
                },
                None,
                vec![r(16)],
            ),
            (
                Instr::Cpop {
                    rs1: r(17),
                    cop: 2,
                    op: 9,
                },
                None,
                vec![r(17)],
            ),
            (
                Instr::Movtos {
                    sreg: SpecialReg::Md,
                    rs: r(18),
                },
                None,
                vec![r(18)],
            ),
            (
                Instr::Movfrs {
                    rd: r(19),
                    sreg: SpecialReg::Md,
                },
                Some(r(19)),
                vec![],
            ),
            (Instr::Nop, None, vec![]),
        ];
        for (instr, def, uses) in cases {
            assert_eq!(instr.def(), def, "{instr}: wrong def");
            let got: Vec<Reg> = instr.uses().collect();
            assert_eq!(got, uses, "{instr}: wrong uses");
            // And the backward transfer agrees: defs leave the set, uses
            // enter it.
            let mut live: RegSet = def.map_or(0, |d| 1 << d.index());
            step_backward(&mut live, &instr);
            if let Some(d) = def {
                if !uses.contains(&d) {
                    assert!(!contains(live, d), "{instr}: def must be killed");
                }
            }
            for u in uses {
                assert!(contains(live, u), "{instr}: use must be live");
            }
        }
    }

    /// Compare-and-branch and call/return terminators feed the same
    /// analysis through `Terminator::{def, uses}`.
    #[test]
    fn def_use_sets_of_terminators() {
        let r = Reg::new;
        let branch = Terminator::Branch {
            cond: Cond::Lt,
            rs1: r(1),
            rs2: r(2),
            taken: 0,
            fall: 1,
            p_taken: 0.5,
        };
        assert_eq!(branch.def(), None);
        assert_eq!(branch.uses(), vec![r(1), r(2)]);
        let call = Terminator::Call {
            target: 0,
            link: Reg::LINK,
            ret_to: 1,
        };
        assert_eq!(call.def(), Some(Reg::LINK));
        assert!(call.uses().is_empty());
        let ret = Terminator::Return { link: Reg::LINK };
        assert_eq!(ret.def(), None);
        assert_eq!(ret.uses(), vec![Reg::LINK]);
        assert_eq!(Terminator::Halt.def(), None);
        assert!(Terminator::Halt.uses().is_empty());
    }

    #[test]
    fn step_backward_kill_then_gen() {
        // r1 = r1 + r2: def and use of r1 — still live (used before def).
        let mut live: RegSet = 0;
        step_backward(&mut live, &add(1, 1, 2));
        assert!(contains(live, Reg::new(1)));
        assert!(contains(live, Reg::new(2)));
        // r3 = r4 + r4, backward through {r3}: r3 dies, r4 born.
        let mut live: RegSet = 1 << 3;
        step_backward(&mut live, &add(3, 4, 4));
        assert!(!contains(live, Reg::new(3)));
        assert!(contains(live, Reg::new(4)));
    }
}
