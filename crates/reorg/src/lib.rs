//! # mipsx-reorg — the MIPS-X code reorganizer
//!
//! MIPS-X, like MIPS before it, moves pipeline interlocks into software:
//! *"the resulting pipeline interlocks are handled by the supporting
//! software system."* This crate is that software system — the post-pass
//! reorganizer that takes naive straight-line code (a [`RawProgram`] of
//! basic blocks) and produces a scheduled [`mipsx_asm::Program`] in which
//!
//! - every **load delay slot** is filled with an independent instruction or
//!   an explicit `nop` (the no-ops the paper counts: 15.6 % for Pascal,
//!   18.3 % for Lisp with its load-load car/cdr chains);
//! - every **branch delay slot** is filled according to a
//!   [`BranchScheme`] — the six schemes of the paper's **Table 1**
//!   (1 or 2 slots × no-squash / always-squash / squash-optional), using
//!   the paper's priority order: *"first try to move an instruction from
//!   before the branch into the slot ... the next choice is to find
//!   instructions from the destination or the sequential path that have no
//!   effect if the branch goes the wrong way"*, and with squashing, *"any
//!   instruction from the branch destination"*;
//! - **static branch prediction** picks the squash sense (*"in the static
//!   case most branches go"* — predict-taken unless a profile says
//!   otherwise).
//!
//! Two of the alternatives the team evaluated and rejected are also here so
//! the paper's negative results can be reproduced: the **quick compare**
//! classifier ([`quick_compare`]) and the **branch target cache**
//! ([`btb`]) that *"never did much better than static prediction and was
//! much more complex."*

pub mod btb;
pub mod liveness;
pub mod quick_compare;
mod raw;
mod schedule;
mod scheme;

pub use raw::{BlockId, RawBlock, RawProgram, Terminator};
pub use schedule::{ReorgError, Reorganizer, ScheduleReport};
pub use scheme::{BranchScheme, SquashPolicy};
