//! The *quick compare* classifier.
//!
//! The quick compare was a proposed comparator on the register-file outputs
//! that would have resolved branches at the end of RF, cutting the branch
//! delay to one slot: *"Only equality and sign comparisons can be obtained
//! using this method since there is not enough time for an arithmetic
//! operation."* It was dropped because the comparator sat after the bypass
//! muxes and *"could potentially lengthen the processor cycle time."*
//!
//! The go/no-go number the team needed first was *"what percentage of
//! branches could be handled by a quick compare"* — Katevenis reported
//! ≈80 % with compiler help; the MIPS-X team measured 70–80 %. This module
//! reproduces that classification over a [`RawProgram`], optionally
//! weighted by block execution counts for the dynamic figure.

use crate::{RawProgram, Terminator};

/// Classification result.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct QuickCompareStats {
    /// Branches examined (dynamic count when weighted).
    pub total: u64,
    /// Branches a quick compare could resolve in RF.
    pub quick: u64,
    /// Branches needing the full ALU (two-instruction sequences under the
    /// quick-compare design: an ALU op, then a quick sign compare).
    pub full: u64,
}

impl QuickCompareStats {
    /// Fraction of branches that are quick-compare-able.
    pub fn quick_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.quick as f64 / self.total as f64
        }
    }

    /// Average branch instructions per source-level branch under the
    /// quick-compare design: 1 for quick ones, 2 for the rest (*"Other
    /// conditions such as greater than would require two steps."*)
    pub fn avg_instructions_per_branch(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.quick + 2 * self.full) as f64 / self.total as f64
        }
    }
}

/// Classify every branch in a program. `weights[b]` is the execution count
/// of block `b` (pass `None` for the static count).
pub fn analyze(program: &RawProgram, weights: Option<&[u64]>) -> QuickCompareStats {
    let mut stats = QuickCompareStats::default();
    for (id, term) in program.terms.iter().enumerate() {
        let Terminator::Branch { cond, rs2, .. } = term else {
            continue;
        };
        let weight = weights.map_or(1, |w| w.get(id).copied().unwrap_or(0));
        stats.total += weight;
        if cond.quick_compare_able(rs2.is_zero()) {
            stats.quick += weight;
        } else {
            stats.full += weight;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RawBlock;
    use mipsx_isa::{Cond, Reg};

    fn branch_block(cond: Cond, rs2: u8, taken: usize, fall: usize) -> Terminator {
        Terminator::Branch {
            cond,
            rs1: Reg::new(1),
            rs2: Reg::new(rs2),
            taken,
            fall,
            p_taken: 0.5,
        }
    }

    fn program() -> RawProgram {
        RawProgram::new(
            vec![RawBlock::default(); 5],
            vec![
                branch_block(Cond::Eq, 2, 4, 1), // quick: equality
                branch_block(Cond::Lt, 0, 4, 2), // quick: sign test vs r0
                branch_block(Cond::Lt, 3, 4, 3), // full: magnitude compare
                branch_block(Cond::Lo, 0, 4, 4), // full: unsigned
                Terminator::Halt,
            ],
        )
    }

    #[test]
    fn static_classification() {
        let s = analyze(&program(), None);
        assert_eq!(s.total, 4);
        assert_eq!(s.quick, 2);
        assert_eq!(s.full, 2);
        assert!((s.quick_fraction() - 0.5).abs() < 1e-12);
        assert!((s.avg_instructions_per_branch() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn dynamic_weighting() {
        // The two quick branches execute far more often.
        let weights = [70, 10, 15, 5, 0];
        let s = analyze(&program(), Some(&weights));
        assert_eq!(s.total, 100);
        assert_eq!(s.quick, 80);
        assert!((s.quick_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_program() {
        let p = RawProgram::new(vec![RawBlock::default()], vec![Terminator::Halt]);
        let s = analyze(&p, None);
        assert_eq!(s.total, 0);
        assert_eq!(s.quick_fraction(), 0.0);
    }
}
