//! Property tests: assembler/disassembler round trips.

use mipsx_asm::{assemble, disassemble};
use mipsx_isa::{ComputeOp, Instr, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

/// Instructions whose `Display` form the text assembler can parse back
/// (branches display raw displacements, which the text syntax reads as
/// absolute targets, so they are exercised separately below).
fn arb_textable() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), arb_reg(), -65536i32..=65535).prop_map(|(rs1, rd, offset)| Instr::Ld {
            rs1,
            rd,
            offset
        }),
        (arb_reg(), arb_reg(), -65536i32..=65535).prop_map(|(rs1, rsrc, offset)| Instr::St {
            rs1,
            rsrc,
            offset
        }),
        (
            prop::sample::select(
                ComputeOp::ALL
                    .iter()
                    .copied()
                    .filter(|op| !op.uses_shamt())
                    .collect::<Vec<_>>()
            ),
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rs1, rs2, rd)| Instr::Compute {
                op,
                rs1,
                rs2,
                rd,
                shamt: 0
            }),
        (arb_reg(), arb_reg(), -65536i32..=65535).prop_map(|(rs1, rd, imm)| Instr::Addi {
            rs1,
            rd,
            imm
        }),
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Jpc),
        Just(Instr::Jpcrs),
    ]
}

proptest! {
    /// Display -> assemble -> decode reproduces the instruction.
    #[test]
    fn text_round_trip(instr in arb_textable()) {
        let text = instr.to_string();
        let program = assemble(&text).unwrap_or_else(|e| panic!("`{text}` failed: {e}"));
        prop_assert_eq!(program.instr_at(0), Some(instr));
    }

    /// Disassembly of arbitrary words never panics and yields one line per
    /// word.
    #[test]
    fn disassemble_total(words in prop::collection::vec(any::<u32>(), 0..64)) {
        let lines = disassemble(0, &words);
        prop_assert_eq!(lines.len(), words.len());
    }
}

#[test]
fn branch_text_round_trip() {
    // Branches written with absolute numeric targets round-trip through the
    // assembler: target 2 from address 0 means displacement +2.
    let p = assemble("bltsq r3, r4, 2\nnop\nhalt").unwrap();
    match p.instr_at(0).unwrap() {
        Instr::Branch { disp, .. } => assert_eq!(disp, 2),
        other => panic!("expected branch, got {other}"),
    }
}
