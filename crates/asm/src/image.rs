//! Decode-once program images.
//!
//! MIPS-X words decode totally and statelessly, so a program image can be
//! decoded exactly once into a side-car table of [`DecodedEntry`] records —
//! the instruction plus its precomputed [`InstrMeta`] — instead of calling
//! `Instr::decode` on every fetched cycle. Two containers cover the two
//! access patterns:
//!
//! - [`DecodedImage`]: a dense, immutable table over one contiguous image.
//!   Static consumers (verifier, disassembler, [`Program`] accessors)
//!   iterate it.
//! - [`DecodedMem`]: a sparse, paged, *invalidatable* side-car over the
//!   executor's whole address space. The pipeline and the reference model
//!   fetch through it; a store to instruction memory clears the entry's
//!   valid bit so the next fetch re-decodes the freshly written word
//!   (the invalidation rule that keeps self-modifying code coherent).

use mipsx_isa::{Instr, InstrMeta};

use crate::Program;

/// One decoded word: the raw word, its instruction, and the precomputed
/// static metadata. This is the unit every decode-once consumer reads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodedEntry {
    /// The raw 32-bit memory word.
    pub word: u32,
    /// The decoded instruction.
    pub instr: Instr,
    /// Precomputed per-instruction facts.
    pub meta: InstrMeta,
}

impl DecodedEntry {
    /// Decode one word. The single shared decode point: everything outside
    /// image construction reads `DecodedEntry` fields instead of calling
    /// `Instr::decode` again.
    #[inline]
    pub fn decode(word: u32) -> DecodedEntry {
        let instr = Instr::decode(word);
        DecodedEntry {
            word,
            instr,
            meta: InstrMeta::of(instr),
        }
    }

    /// Whether this entry is the `halt` sentinel — the one block
    /// terminator the metadata flags cannot express (`halt` is neither a
    /// branch nor a jump), so the basic-block partitioner asks here.
    #[inline]
    pub fn is_halt(&self) -> bool {
        matches!(self.instr, Instr::Halt)
    }
}

/// A dense decoded table over one contiguous image: `entries[i]` decodes
/// the word at `origin + i`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodedImage {
    origin: u32,
    entries: Vec<DecodedEntry>,
}

impl DecodedImage {
    /// Decode every word of a contiguous image, once.
    pub fn decode(origin: u32, words: &[u32]) -> DecodedImage {
        DecodedImage {
            origin,
            entries: words.iter().map(|&w| DecodedEntry::decode(w)).collect(),
        }
    }

    /// Decode a whole [`Program`] image.
    pub fn from_program(program: &Program) -> DecodedImage {
        DecodedImage::decode(program.origin, &program.words)
    }

    /// Word address the image starts at.
    #[inline]
    pub fn origin(&self) -> u32 {
        self.origin
    }

    /// Number of words in the image.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the image is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The decoded entry at a word address, if inside the image.
    #[inline]
    pub fn get(&self, addr: u32) -> Option<&DecodedEntry> {
        addr.checked_sub(self.origin)
            .and_then(|i| self.entries.get(i as usize))
    }

    /// The instruction at a word address, if inside the image.
    #[inline]
    pub fn instr_at(&self, addr: u32) -> Option<Instr> {
        self.get(addr).map(|e| e.instr)
    }

    /// The metadata at a word address, if inside the image.
    #[inline]
    pub fn meta_at(&self, addr: u32) -> Option<&InstrMeta> {
        self.get(addr).map(|e| &e.meta)
    }

    /// Iterate `(address, entry)` pairs over the whole image.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &DecodedEntry)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(move |(i, e)| (self.origin + i as u32, e))
    }
}

/// Words per [`DecodedMem`] page. Pages are allocated lazily, so the
/// executor pays only for address ranges it actually fetches from.
const PAGE_WORDS: usize = 1024;

/// One lazily decoded page: a valid bitmap plus the entry table.
struct Page {
    valid: [u64; PAGE_WORDS / 64],
    entries: Box<[DecodedEntry]>,
}

impl Page {
    fn new() -> Page {
        Page {
            valid: [0; PAGE_WORDS / 64],
            // Heap-allocate directly (a fixed-size array literal would be
            // built on the stack and copied over).
            entries: vec![DecodedEntry::decode(0); PAGE_WORDS].into_boxed_slice(),
        }
    }

    #[inline]
    fn is_valid(&self, idx: usize) -> bool {
        self.valid[idx / 64] & (1 << (idx % 64)) != 0
    }

    #[inline]
    fn set_valid(&mut self, idx: usize) {
        self.valid[idx / 64] |= 1 << (idx % 64);
    }

    #[inline]
    fn clear_valid(&mut self, idx: usize) {
        self.valid[idx / 64] &= !(1 << (idx % 64));
    }
}

/// A sparse, invalidatable decode cache over the executor's address space.
///
/// The pipeline's IF stage and the reference model's retire path fetch
/// through [`DecodedMem::fetch_with`], which decodes each word the first
/// time it is fetched and returns the memoized entry afterwards. Any write
/// that can alter instruction memory must call [`DecodedMem::invalidate`]
/// for the stored address — the entry's valid bit is cleared and the next
/// fetch re-decodes whatever word the real fetch path then returns. The
/// rule is write-invalidate rather than write-update on purpose: it stays
/// correct no matter what the memory hierarchy between the store and the
/// next fetch does to the word.
///
/// Disabling the cache ([`DecodedMem::set_enabled`]) makes every fetch
/// decode afresh — the word-decode baseline the `machine_steps` benchmark
/// and the decode differential test compare against.
pub struct DecodedMem {
    /// `(page number, page)` — a handful of pages in practice, scanned
    /// linearly with a most-recently-used fast path.
    pages: Vec<(u32, Page)>,
    /// Index of the most recently fetched page.
    mru: usize,
    /// The page number at `pages[mru]`, mirrored into the struct header so
    /// the per-fetch probe is one register compare with no pointer chase.
    /// `u64::MAX` (never a valid `u32` page number) when `pages` holds no
    /// MRU — the invariant is: `mru_page != u64::MAX` implies
    /// `pages[mru].0 as u64 == mru_page`.
    mru_page: u64,
    enabled: bool,
}

impl Default for DecodedMem {
    fn default() -> DecodedMem {
        DecodedMem::new()
    }
}

impl DecodedMem {
    /// An empty cache with memoization enabled.
    pub fn new() -> DecodedMem {
        DecodedMem {
            pages: Vec::new(),
            mru: 0,
            mru_page: u64::MAX,
            enabled: true,
        }
    }

    /// Whether fetches are memoized.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable memoization. Disabling drops all cached entries,
    /// so re-enabling starts cold (never stale).
    pub fn set_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.clear();
        }
        self.enabled = enabled;
    }

    /// Drop every cached entry (e.g. before loading a fresh image over a
    /// possibly-executed address range). Page allocations are kept — the
    /// entry tables are the only sizable buffers here and machine-reuse
    /// paths clear this cache once per job — and invalidated wholesale by
    /// zeroing their valid bitmaps.
    pub fn clear(&mut self) {
        for (_, page) in &mut self.pages {
            page.valid = [0; PAGE_WORDS / 64];
        }
        self.mru = 0;
        self.mru_page = u64::MAX;
    }

    /// Index into `pages` for `page_no`, creating the page if needed — the
    /// out-of-line miss path behind the MRU probe in `fetch_with`.
    #[cold]
    fn page_index_slow(&mut self, page_no: u32) -> usize {
        let i = match self.pages.iter().position(|&(no, _)| no == page_no) {
            Some(i) => i,
            None => {
                self.pages.push((page_no, Page::new()));
                self.pages.len() - 1
            }
        };
        self.mru = i;
        self.mru_page = u64::from(page_no);
        i
    }

    /// Fetch the decoded entry for `addr`, calling `read_word` for the raw
    /// word only when the entry is absent (or the cache is disabled).
    #[inline]
    pub fn fetch_with(&mut self, addr: u32, read_word: impl FnOnce() -> u32) -> DecodedEntry {
        if !self.enabled {
            return DecodedEntry::decode(read_word());
        }
        let page_no = addr / PAGE_WORDS as u32;
        let idx = (addr as usize) % PAGE_WORDS;
        let p = if self.mru_page == u64::from(page_no) {
            self.mru
        } else {
            self.page_index_slow(page_no)
        };
        let page = &mut self.pages[p].1;
        if page.is_valid(idx) {
            return page.entries[idx];
        }
        let entry = DecodedEntry::decode(read_word());
        page.entries[idx] = entry;
        page.set_valid(idx);
        entry
    }

    /// Drop the cached entry for `addr`. Must be called for every write
    /// that can alter instruction memory; the next fetch re-decodes.
    #[inline]
    pub fn invalidate(&mut self, addr: u32) {
        if !self.enabled {
            return;
        }
        let page_no = addr / PAGE_WORDS as u32;
        let idx = (addr as usize) % PAGE_WORDS;
        // Most stores land either in the code page IF has hot (the MRU) or
        // in an untouched data page (no entry to drop) — both are decided
        // without the scan.
        if self.mru_page == u64::from(page_no) {
            self.pages[self.mru].1.clear_valid(idx);
        } else if let Some(i) = self.pages.iter().position(|&(no, _)| no == page_no) {
            self.pages[i].1.clear_valid(idx);
        }
    }

    /// Eagerly decode a contiguous image, so the first pass over a freshly
    /// loaded program hits warm entries.
    pub fn preload(&mut self, origin: u32, words: &[u32]) {
        if !self.enabled {
            return;
        }
        for (i, &w) in words.iter().enumerate() {
            let addr = origin.wrapping_add(i as u32);
            let idx = (addr as usize) % PAGE_WORDS;
            let page_no = addr / PAGE_WORDS as u32;
            let p = if self.mru_page == u64::from(page_no) {
                self.mru
            } else {
                self.page_index_slow(page_no)
            };
            let page = &mut self.pages[p].1;
            page.entries[idx] = DecodedEntry::decode(w);
            page.set_valid(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mipsx_isa::Reg;

    fn addi(rd: u8, imm: i32) -> Instr {
        Instr::Addi {
            rs1: Reg::ZERO,
            rd: Reg::new(rd),
            imm,
        }
    }

    #[test]
    fn entry_decode_matches_instr_decode() {
        for w in [0u32, u32::MAX, addi(3, 7).encode(), Instr::Halt.encode()] {
            let e = DecodedEntry::decode(w);
            assert_eq!(e.word, w);
            assert_eq!(e.instr, Instr::decode(w));
            assert_eq!(e.meta, e.instr.meta());
        }
    }

    #[test]
    fn dense_image_indexes_by_origin() {
        let words = vec![addi(1, 5).encode(), Instr::Nop.encode()];
        let img = DecodedImage::decode(0x100, &words);
        assert_eq!(img.len(), 2);
        assert_eq!(img.origin(), 0x100);
        assert!(img.get(0xFF).is_none());
        assert_eq!(img.instr_at(0x101), Some(Instr::Nop));
        assert!(img.meta_at(0x101).unwrap().is_nop);
        let pairs: Vec<u32> = img.iter().map(|(a, _)| a).collect();
        assert_eq!(pairs, vec![0x100, 0x101]);
    }

    #[test]
    fn fetch_memoizes_and_invalidate_redecodes() {
        let mut dm = DecodedMem::new();
        let old = addi(1, 1).encode();
        let new = addi(2, 9).encode();
        assert_eq!(dm.fetch_with(0x40, || old).instr, addi(1, 1));
        // Memoized: the read closure must not run again.
        assert_eq!(
            dm.fetch_with(0x40, || panic!("stale entry re-read memory"))
                .instr,
            addi(1, 1)
        );
        // Without invalidation the stale decode would survive a write.
        dm.invalidate(0x40);
        assert_eq!(dm.fetch_with(0x40, || new).instr, addi(2, 9));
    }

    #[test]
    fn invalidate_unknown_address_is_noop() {
        let mut dm = DecodedMem::new();
        dm.invalidate(0xDEAD_BEEF);
        assert_eq!(dm.fetch_with(3, || 0).instr, Instr::decode(0));
    }

    #[test]
    fn disabled_cache_always_redecodes() {
        let mut dm = DecodedMem::new();
        dm.set_enabled(false);
        let a = addi(1, 1).encode();
        let b = addi(2, 2).encode();
        assert_eq!(dm.fetch_with(7, || a).instr, addi(1, 1));
        assert_eq!(dm.fetch_with(7, || b).instr, addi(2, 2));
        // Re-enabling starts cold rather than serving pre-disable entries.
        dm.set_enabled(true);
        assert_eq!(dm.fetch_with(7, || b).instr, addi(2, 2));
    }

    #[test]
    fn preload_crosses_page_boundaries() {
        let mut dm = DecodedMem::new();
        let words: Vec<u32> = (0..2048).map(|i| addi(1, i & 0xFF).encode()).collect();
        dm.preload(0x300, &words);
        for (i, &w) in words.iter().enumerate() {
            let e = dm.fetch_with(0x300 + i as u32, || panic!("preload missed {i}"));
            assert_eq!(e.word, w);
        }
    }
}
