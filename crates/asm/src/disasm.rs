//! Disassembler.

use crate::image::DecodedImage;

/// Render memory words as assembly text, one `addr: instruction` line per
/// word, starting at `origin`. The words are decoded once into a
/// [`DecodedImage`] and the table is formatted — the same decode path the
/// other static consumers use.
///
/// ```
/// use mipsx_asm::{assemble, disassemble};
///
/// let p = assemble("li r1, 7\nhalt")?;
/// let text = disassemble(p.origin, &p.words);
/// assert!(text[0].contains("addi r1, r0, 7"));
/// assert!(text[1].contains("halt"));
/// # Ok::<(), mipsx_asm::AsmError>(())
/// ```
pub fn disassemble(origin: u32, words: &[u32]) -> Vec<String> {
    DecodedImage::decode(origin, words)
        .iter()
        .map(|(addr, entry)| format!("{addr:#07x}:  {}", entry.instr))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;

    #[test]
    fn disassembly_matches_length() {
        let p = assemble("nop\nnop\nhalt").unwrap();
        assert_eq!(disassemble(p.origin, &p.words).len(), 3);
    }

    #[test]
    fn shows_illegal_words_as_data() {
        let lines = disassemble(0, &[0xCAFE_BABE]);
        assert!(lines[0].contains(".word"));
    }
}
