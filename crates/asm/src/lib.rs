//! # mipsx-asm — assembler, disassembler and program images for MIPS-X
//!
//! This crate turns MIPS-X assembly into executable [`Program`] images, three
//! ways:
//!
//! - [`assemble`] parses the textual assembly language (two passes, labels,
//!   directives) — used by the examples and hand-written workload kernels;
//! - [`Asm`] is a programmatic builder with label/fixup support — used by the
//!   synthetic workload generators and the IR code generator, which emit
//!   thousands of instructions and should not go through text;
//! - [`disassemble`] renders memory words back to assembly for debugging and
//!   round-trip testing.
//!
//! ## Example
//!
//! ```
//! use mipsx_asm::assemble;
//!
//! let program = assemble(
//!     r#"
//!     start:  addi r1, r0, 10      ; r1 = 10
//!             addi r2, r0, 0       ; r2 = sum
//!     loop:   add  r2, r2, r1
//!             addi r1, r1, -1
//!             bne  r1, r0, loop
//!             nop                  ; delay slot 1
//!             nop                  ; delay slot 2
//!             halt
//!     "#,
//! )?;
//! assert_eq!(program.entry, 0);
//! assert!(program.words.len() >= 8);
//! # Ok::<(), mipsx_asm::AsmError>(())
//! ```

mod builder;
mod disasm;
mod error;
mod image;
mod program;
mod text;

pub use builder::{Asm, Label};
pub use disasm::disassemble;
pub use error::AsmError;
pub use image::{DecodedEntry, DecodedImage, DecodedMem};
pub use program::Program;
pub use text::{assemble, assemble_at};
