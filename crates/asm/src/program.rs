//! Executable program images.

use std::collections::BTreeMap;
use std::fmt;

use mipsx_isa::Instr;

use crate::image::{DecodedEntry, DecodedImage};

/// An assembled MIPS-X program: a contiguous block of words plus metadata.
///
/// Addresses are **word** addresses (MIPS-X is word-addressed; instructions
/// and data are both one word). `words[i]` lives at address `origin + i`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// The memory image.
    pub words: Vec<u32>,
    /// Word address the image is loaded at.
    pub origin: u32,
    /// Word address execution starts at.
    pub entry: u32,
    /// Label name → word address.
    pub symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Create an empty program at origin 0.
    pub fn new() -> Program {
        Program::default()
    }

    /// Create a program from raw words at an origin, entering at the origin.
    pub fn from_words(origin: u32, words: Vec<u32>) -> Program {
        Program {
            words,
            origin,
            entry: origin,
            symbols: BTreeMap::new(),
        }
    }

    /// Number of words in the image.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at a given address, if inside the image.
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        addr.checked_sub(self.origin)
            .and_then(|i| self.words.get(i as usize))
            .copied()
    }

    /// The decoded instruction at a given address, if inside the image.
    pub fn instr_at(&self, addr: u32) -> Option<Instr> {
        self.word_at(addr).map(|w| DecodedEntry::decode(w).instr)
    }

    /// Decode the whole image once into a dense side-car table. Static
    /// consumers (verifier, disassembler) work from this rather than
    /// re-decoding words.
    pub fn decoded(&self) -> DecodedImage {
        DecodedImage::from_program(self)
    }

    /// Address of a label.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Iterate over `(address, instruction)` pairs of the whole image.
    pub fn iter_instrs(&self) -> impl Iterator<Item = (u32, Instr)> + '_ {
        self.words
            .iter()
            .enumerate()
            .map(move |(i, &w)| (self.origin + i as u32, DecodedEntry::decode(w).instr))
    }

    /// Count the explicit `nop` instructions in the image — the static
    /// version of the paper's no-op statistic.
    pub fn static_nop_count(&self) -> usize {
        self.iter_instrs().filter(|(_, i)| i.is_nop()).count()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let by_addr: BTreeMap<u32, &str> = self
            .symbols
            .iter()
            .map(|(name, &addr)| (addr, name.as_str()))
            .collect();
        for (addr, instr) in self.iter_instrs() {
            if let Some(name) = by_addr.get(&addr) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "  {addr:#07x}:  {instr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mipsx_isa::Reg;

    fn tiny() -> Program {
        let mut p = Program::from_words(
            0x100,
            vec![
                Instr::Addi {
                    rs1: Reg::ZERO,
                    rd: Reg::new(1),
                    imm: 5,
                }
                .encode(),
                Instr::Nop.encode(),
                Instr::Halt.encode(),
            ],
        );
        p.symbols.insert("start".into(), 0x100);
        p
    }

    #[test]
    fn word_lookup_respects_origin() {
        let p = tiny();
        assert!(p.word_at(0x0FF).is_none());
        assert!(p.word_at(0x100).is_some());
        assert!(p.word_at(0x102).is_some());
        assert!(p.word_at(0x103).is_none());
    }

    #[test]
    fn instr_at_decodes() {
        let p = tiny();
        assert_eq!(p.instr_at(0x101), Some(Instr::Nop));
        assert_eq!(p.instr_at(0x102), Some(Instr::Halt));
    }

    #[test]
    fn static_nops_counted() {
        assert_eq!(tiny().static_nop_count(), 1);
    }

    #[test]
    fn display_lists_labels() {
        let text = tiny().to_string();
        assert!(text.contains("start:"));
        assert!(text.contains("halt"));
    }

    #[test]
    fn symbol_lookup() {
        assert_eq!(tiny().symbol("start"), Some(0x100));
        assert_eq!(tiny().symbol("missing"), None);
    }
}
