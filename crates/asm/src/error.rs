//! Assembler errors.

use std::error::Error;
use std::fmt;

/// An error produced while assembling a program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A mnemonic that is not part of the instruction set.
    UnknownMnemonic { line: usize, mnemonic: String },
    /// An operand did not parse (bad register name, malformed address, ...).
    BadOperand { line: usize, detail: String },
    /// The wrong number of operands for a mnemonic.
    OperandCount {
        line: usize,
        mnemonic: String,
        expected: usize,
        found: usize,
    },
    /// A label was used but never defined.
    UndefinedLabel { line: usize, label: String },
    /// A label was defined twice.
    DuplicateLabel { line: usize, label: String },
    /// An immediate or displacement does not fit its field.
    OutOfRange {
        line: usize,
        what: &'static str,
        value: i64,
        bits: u32,
    },
    /// A malformed directive (`.org`, `.word`, ...).
    BadDirective { line: usize, detail: String },
    /// `.org` attempted to move the location counter backwards.
    OrgBackwards { line: usize, from: u32, to: u32 },
}

impl AsmError {
    /// The 1-based source line the error refers to (0 for builder-level
    /// errors with no source text).
    pub fn line(&self) -> usize {
        match *self {
            AsmError::UnknownMnemonic { line, .. }
            | AsmError::BadOperand { line, .. }
            | AsmError::OperandCount { line, .. }
            | AsmError::UndefinedLabel { line, .. }
            | AsmError::DuplicateLabel { line, .. }
            | AsmError::OutOfRange { line, .. }
            | AsmError::BadDirective { line, .. }
            | AsmError::OrgBackwards { line, .. } => line,
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownMnemonic { line, mnemonic } => {
                write!(f, "line {line}: unknown mnemonic `{mnemonic}`")
            }
            AsmError::BadOperand { line, detail } => {
                write!(f, "line {line}: bad operand: {detail}")
            }
            AsmError::OperandCount {
                line,
                mnemonic,
                expected,
                found,
            } => write!(
                f,
                "line {line}: `{mnemonic}` takes {expected} operand(s), found {found}"
            ),
            AsmError::UndefinedLabel { line, label } => {
                write!(f, "line {line}: undefined label `{label}`")
            }
            AsmError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label `{label}`")
            }
            AsmError::OutOfRange {
                line,
                what,
                value,
                bits,
            } => write!(
                f,
                "line {line}: {what} {value} does not fit in {bits} signed bits"
            ),
            AsmError::BadDirective { line, detail } => {
                write!(f, "line {line}: bad directive: {detail}")
            }
            AsmError::OrgBackwards { line, from, to } => write!(
                f,
                "line {line}: .org moves location counter backwards ({from:#x} -> {to:#x})"
            ),
        }
    }
}

impl Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::UndefinedLabel {
            line: 12,
            label: "loop".into(),
        };
        assert!(e.to_string().contains("line 12"));
        assert!(e.to_string().contains("loop"));
        assert_eq!(e.line(), 12);
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(AsmError::BadDirective {
            line: 1,
            detail: "x".into(),
        });
        assert!(!e.to_string().is_empty());
    }
}
