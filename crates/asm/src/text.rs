//! The textual two-pass assembler.
//!
//! Syntax, one statement per line:
//!
//! ```text
//! [label:] [mnemonic operand, ...] [; comment]   # '#' comments also work
//! ```
//!
//! Directives: `.org <addr>` (move the location counter forward),
//! `.word <value-or-label>` (emit a data word), `.entry <label>` (set the
//! entry point).
//!
//! Memory operands are written `offset(base)` as in `ld r4, -8(r30)`.
//! Branch mnemonics are `b<cond>` plus an optional squash suffix:
//! `beq`/`beqsq`/`beqsqg` (no squash / squash-if-don't-go / squash-if-go).
//! Pseudo-instructions: `li rd, imm`, `la rd, label`, `mv rd, rs`,
//! `jump label`, `call label` (links through `r31`), `ret`.

use std::collections::BTreeMap;

use mipsx_isa::{ComputeOp, Cond, Instr, Reg, SpecialReg, SquashMode};

use crate::{AsmError, Program};

/// Assemble MIPS-X source text into a [`Program`] loaded at word address 0.
///
/// # Errors
/// Returns the first [`AsmError`] encountered, tagged with its source line.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_at(source, 0)
}

/// Assemble at a non-zero origin.
///
/// # Errors
/// See [`assemble`].
pub fn assemble_at(source: &str, origin: u32) -> Result<Program, AsmError> {
    let statements = parse_lines(source)?;
    let symbols = layout(&statements, origin)?;
    encode(&statements, &symbols, origin)
}

/// One parsed source statement.
#[derive(Debug)]
struct Statement {
    line: usize,
    label: Option<String>,
    body: Option<Body>,
}

#[derive(Debug)]
enum Body {
    Instr {
        mnemonic: String,
        operands: Vec<String>,
    },
    Org(u32),
    Word(String),
    Entry(String),
}

fn parse_lines(source: &str) -> Result<Vec<Statement>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let (label, rest) = match text.split_once(':') {
            Some((l, r)) if is_ident(l.trim()) => (Some(l.trim().to_owned()), r.trim()),
            _ => (None, text),
        };
        let body = if rest.is_empty() {
            None
        } else if let Some(dir) = rest.strip_prefix('.') {
            let mut parts = dir.splitn(2, char::is_whitespace);
            let name = parts.next().unwrap_or("");
            let arg = parts.next().unwrap_or("").trim();
            match name {
                "org" => {
                    let v = parse_int(arg).ok_or_else(|| AsmError::BadDirective {
                        line,
                        detail: format!("bad .org operand `{arg}`"),
                    })?;
                    Some(Body::Org(v as u32))
                }
                "word" => Some(Body::Word(arg.to_owned())),
                "entry" => Some(Body::Entry(arg.to_owned())),
                other => {
                    return Err(AsmError::BadDirective {
                        line,
                        detail: format!("unknown directive `.{other}`"),
                    })
                }
            }
        } else {
            let mut parts = rest.splitn(2, char::is_whitespace);
            let mnemonic = parts.next().unwrap_or("").to_lowercase();
            let operands: Vec<String> = parts
                .next()
                .unwrap_or("")
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            Some(Body::Instr { mnemonic, operands })
        };
        out.push(Statement { line, label, body });
    }
    Ok(out)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = s.strip_prefix("-0x").or_else(|| s.strip_prefix("-0X")) {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        s.parse().ok()
    }
}

/// Pass 1: assign an address to every statement and collect labels.
fn layout(statements: &[Statement], origin: u32) -> Result<BTreeMap<String, u32>, AsmError> {
    let mut symbols = BTreeMap::new();
    let mut pc = origin;
    for st in statements {
        if let Some(label) = &st.label {
            if symbols.insert(label.clone(), pc).is_some() {
                return Err(AsmError::DuplicateLabel {
                    line: st.line,
                    label: label.clone(),
                });
            }
        }
        match &st.body {
            Some(Body::Org(addr)) => {
                if *addr < pc {
                    return Err(AsmError::OrgBackwards {
                        line: st.line,
                        from: pc,
                        to: *addr,
                    });
                }
                pc = *addr;
                // A label on a .org line names the new location.
                if let Some(label) = &st.label {
                    symbols.insert(label.clone(), pc);
                }
            }
            Some(Body::Instr { .. }) | Some(Body::Word(_)) => pc += 1,
            Some(Body::Entry(_)) | None => {}
        }
    }
    Ok(symbols)
}

/// Pass 2: encode every statement.
fn encode(
    statements: &[Statement],
    symbols: &BTreeMap<String, u32>,
    origin: u32,
) -> Result<Program, AsmError> {
    let mut words: Vec<u32> = Vec::new();
    let mut pc = origin;
    let mut entry = origin;

    let push = |words: &mut Vec<u32>, pc: &mut u32, w: u32| {
        let index = (*pc - origin) as usize;
        if words.len() <= index {
            words.resize(index + 1, Instr::Nop.encode());
        }
        words[index] = w;
        *pc += 1;
    };

    for st in statements {
        match &st.body {
            None => {}
            Some(Body::Org(addr)) => pc = *addr,
            Some(Body::Entry(label)) => {
                entry = *symbols
                    .get(label.as_str())
                    .ok_or_else(|| AsmError::UndefinedLabel {
                        line: st.line,
                        label: label.clone(),
                    })?;
            }
            Some(Body::Word(arg)) => {
                let value = match parse_int(arg) {
                    Some(v) => v as u32,
                    None => *symbols
                        .get(arg.as_str())
                        .ok_or_else(|| AsmError::UndefinedLabel {
                            line: st.line,
                            label: arg.clone(),
                        })?,
                };
                push(&mut words, &mut pc, value);
            }
            Some(Body::Instr { mnemonic, operands }) => {
                let instr = encode_instr(st.line, mnemonic, operands, symbols, pc)?;
                push(&mut words, &mut pc, instr.encode());
            }
        }
    }

    Ok(Program {
        words,
        origin,
        entry,
        symbols: symbols.clone(),
    })
}

struct Ctx<'a> {
    line: usize,
    mnemonic: &'a str,
    operands: &'a [String],
    symbols: &'a BTreeMap<String, u32>,
    pc: u32,
}

impl Ctx<'_> {
    fn expect(&self, n: usize) -> Result<(), AsmError> {
        if self.operands.len() != n {
            Err(AsmError::OperandCount {
                line: self.line,
                mnemonic: self.mnemonic.to_owned(),
                expected: n,
                found: self.operands.len(),
            })
        } else {
            Ok(())
        }
    }

    fn reg(&self, i: usize) -> Result<Reg, AsmError> {
        parse_reg(&self.operands[i]).ok_or_else(|| AsmError::BadOperand {
            line: self.line,
            detail: format!("expected register, found `{}`", self.operands[i]),
        })
    }

    fn imm(&self, i: usize, what: &'static str, bits: u32) -> Result<i32, AsmError> {
        let text = &self.operands[i];
        let value = match parse_int(text) {
            Some(v) => v,
            None => *self
                .symbols
                .get(text.as_str())
                .ok_or_else(|| AsmError::UndefinedLabel {
                    line: self.line,
                    label: text.clone(),
                })? as i64,
        };
        check_range(self.line, what, value, bits)
    }

    /// Parse `offset(base)` memory operands.
    fn mem(&self, i: usize) -> Result<(i32, Reg), AsmError> {
        let text = &self.operands[i];
        let open = text.find('(').ok_or_else(|| AsmError::BadOperand {
            line: self.line,
            detail: format!("expected offset(base), found `{text}`"),
        })?;
        let close = text.rfind(')').ok_or_else(|| AsmError::BadOperand {
            line: self.line,
            detail: format!("missing `)` in `{text}`"),
        })?;
        let off_text = text[..open].trim();
        let off =
            if off_text.is_empty() {
                0
            } else {
                match parse_int(off_text) {
                    Some(v) => check_range(self.line, "memory offset", v, 17)?,
                    None => {
                        let addr = *self.symbols.get(off_text).ok_or_else(|| {
                            AsmError::UndefinedLabel {
                                line: self.line,
                                label: off_text.to_owned(),
                            }
                        })?;
                        check_range(self.line, "memory offset", addr as i64, 17)?
                    }
                }
            };
        let base = parse_reg(text[open + 1..close].trim()).ok_or_else(|| AsmError::BadOperand {
            line: self.line,
            detail: format!("bad base register in `{text}`"),
        })?;
        Ok((off, base))
    }

    fn branch_target(&self, i: usize) -> Result<i32, AsmError> {
        let text = &self.operands[i];
        let target = match parse_int(text) {
            Some(v) => v,
            None => *self
                .symbols
                .get(text.as_str())
                .ok_or_else(|| AsmError::UndefinedLabel {
                    line: self.line,
                    label: text.clone(),
                })? as i64,
        };
        let disp = target - self.pc as i64;
        check_range(self.line, "branch displacement", disp, 13)
    }

    fn fpu_reg(&self, i: usize) -> Result<u8, AsmError> {
        let text = &self.operands[i];
        text.strip_prefix('f')
            .and_then(|n| n.parse::<u8>().ok())
            .filter(|&n| n < 32)
            .ok_or_else(|| AsmError::BadOperand {
                line: self.line,
                detail: format!("expected FPU register f0..f31, found `{text}`"),
            })
    }

    fn coproc(&self, i: usize) -> Result<u8, AsmError> {
        let text = &self.operands[i];
        text.strip_prefix('c')
            .and_then(|n| n.parse::<u8>().ok())
            .filter(|&n| n < 8)
            .ok_or_else(|| AsmError::BadOperand {
                line: self.line,
                detail: format!("expected coprocessor c0..c7, found `{text}`"),
            })
    }

    fn sreg(&self, i: usize) -> Result<SpecialReg, AsmError> {
        SpecialReg::parse(&self.operands[i]).ok_or_else(|| AsmError::BadOperand {
            line: self.line,
            detail: format!("expected special register, found `{}`", self.operands[i]),
        })
    }
}

fn check_range(line: usize, what: &'static str, value: i64, bits: u32) -> Result<i32, AsmError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        Err(AsmError::OutOfRange {
            line,
            what,
            value,
            bits,
        })
    } else {
        Ok(value as i32)
    }
}

fn parse_reg(s: &str) -> Option<Reg> {
    let n: u8 = s.strip_prefix('r')?.parse().ok()?;
    Reg::try_new(n)
}

/// Recognize `b<cond>[sq|sqg]` mnemonics.
fn parse_branch_mnemonic(m: &str) -> Option<(Cond, SquashMode)> {
    let rest = m.strip_prefix('b')?;
    for cond in Cond::ALL {
        if let Some(suffix) = rest.strip_prefix(cond.mnemonic()) {
            let squash = match suffix {
                "" => SquashMode::NoSquash,
                "sq" => SquashMode::SquashIfNotTaken,
                "sqg" => SquashMode::SquashIfGo,
                _ => continue,
            };
            return Some((cond, squash));
        }
    }
    None
}

fn compute_op(m: &str) -> Option<ComputeOp> {
    ComputeOp::ALL.iter().copied().find(|op| op.mnemonic() == m)
}

fn encode_instr(
    line: usize,
    mnemonic: &str,
    operands: &[String],
    symbols: &BTreeMap<String, u32>,
    pc: u32,
) -> Result<Instr, AsmError> {
    let c = Ctx {
        line,
        mnemonic,
        operands,
        symbols,
        pc,
    };

    if let Some((cond, squash)) = parse_branch_mnemonic(mnemonic) {
        c.expect(3)?;
        return Ok(Instr::Branch {
            cond,
            squash,
            rs1: c.reg(0)?,
            rs2: c.reg(1)?,
            disp: c.branch_target(2)?,
        });
    }

    if let Some(op) = compute_op(mnemonic) {
        return Ok(match op {
            ComputeOp::Sll | ComputeOp::Srl | ComputeOp::Sra => {
                c.expect(3)?;
                Instr::Compute {
                    op,
                    rs1: c.reg(1)?,
                    rs2: Reg::ZERO,
                    rd: c.reg(0)?,
                    shamt: c.imm(2, "shift amount", 6)?.clamp(0, 31) as u8,
                }
            }
            ComputeOp::Shf => {
                c.expect(4)?;
                Instr::Compute {
                    op,
                    rs1: c.reg(1)?,
                    rs2: c.reg(2)?,
                    rd: c.reg(0)?,
                    shamt: c.imm(3, "shift amount", 6)?.clamp(0, 31) as u8,
                }
            }
            _ => {
                c.expect(3)?;
                Instr::Compute {
                    op,
                    rs1: c.reg(1)?,
                    rs2: c.reg(2)?,
                    rd: c.reg(0)?,
                    shamt: 0,
                }
            }
        });
    }

    match mnemonic {
        "ld" => {
            c.expect(2)?;
            let (offset, rs1) = c.mem(1)?;
            Ok(Instr::Ld {
                rs1,
                rd: c.reg(0)?,
                offset,
            })
        }
        "st" => {
            c.expect(2)?;
            let (offset, rs1) = c.mem(1)?;
            Ok(Instr::St {
                rs1,
                rsrc: c.reg(0)?,
                offset,
            })
        }
        "ldf" => {
            c.expect(2)?;
            let (offset, rs1) = c.mem(1)?;
            Ok(Instr::Ldf {
                rs1,
                fr: c.fpu_reg(0)?,
                offset,
            })
        }
        "stf" => {
            c.expect(2)?;
            let (offset, rs1) = c.mem(1)?;
            Ok(Instr::Stf {
                rs1,
                fr: c.fpu_reg(0)?,
                offset,
            })
        }
        "addi" => {
            c.expect(3)?;
            Ok(Instr::Addi {
                rs1: c.reg(1)?,
                rd: c.reg(0)?,
                imm: c.imm(2, "immediate", 17)?,
            })
        }
        "li" => {
            c.expect(2)?;
            Ok(Instr::Addi {
                rs1: Reg::ZERO,
                rd: c.reg(0)?,
                imm: c.imm(1, "immediate", 17)?,
            })
        }
        "la" => {
            c.expect(2)?;
            Ok(Instr::Addi {
                rs1: Reg::ZERO,
                rd: c.reg(0)?,
                imm: c.imm(1, "address", 17)?,
            })
        }
        "mv" => {
            c.expect(2)?;
            Ok(Instr::Compute {
                op: ComputeOp::AddU,
                rs1: c.reg(1)?,
                rs2: Reg::ZERO,
                rd: c.reg(0)?,
                shamt: 0,
            })
        }
        "jspci" => {
            c.expect(2)?;
            let (imm, rs1) = c.mem(1)?;
            let imm = check_range(line, "jump immediate", imm as i64, 15)?;
            Ok(Instr::Jspci {
                rs1,
                rd: c.reg(0)?,
                imm,
            })
        }
        "jump" => {
            c.expect(1)?;
            Ok(Instr::Jspci {
                rs1: Reg::ZERO,
                rd: Reg::ZERO,
                imm: c.imm(0, "jump target", 15)?,
            })
        }
        "call" => {
            c.expect(1)?;
            Ok(Instr::Jspci {
                rs1: Reg::ZERO,
                rd: Reg::LINK,
                imm: c.imm(0, "call target", 15)?,
            })
        }
        "ret" => {
            c.expect(0)?;
            Ok(Instr::Jspci {
                rs1: Reg::LINK,
                rd: Reg::ZERO,
                imm: 0,
            })
        }
        "jpc" => {
            c.expect(0)?;
            Ok(Instr::Jpc)
        }
        "jpcrs" => {
            c.expect(0)?;
            Ok(Instr::Jpcrs)
        }
        "movfrs" => {
            c.expect(2)?;
            Ok(Instr::Movfrs {
                rd: c.reg(0)?,
                sreg: c.sreg(1)?,
            })
        }
        "movtos" => {
            c.expect(2)?;
            Ok(Instr::Movtos {
                sreg: c.sreg(0)?,
                rs: c.reg(1)?,
            })
        }
        "cpop" => {
            c.expect(2)?;
            let (op, rs1) = c.mem(1)?;
            let op = check_range(line, "coprocessor op", op as i64, 15)?;
            Ok(Instr::Cpop {
                rs1,
                cop: c.coproc(0)?,
                op: (op as u16) & 0x3FFF,
            })
        }
        "mvtc" => {
            c.expect(3)?;
            Ok(Instr::Mvtc {
                rs: c.reg(2)?,
                cop: c.coproc(0)?,
                op: c.imm(1, "coprocessor op", 15)? as u16 & 0x3FFF,
            })
        }
        "mvfc" => {
            c.expect(3)?;
            Ok(Instr::Mvfc {
                rd: c.reg(0)?,
                cop: c.coproc(1)?,
                op: c.imm(2, "coprocessor op", 15)? as u16 & 0x3FFF,
            })
        }
        "nop" => {
            c.expect(0)?;
            Ok(Instr::Nop)
        }
        "halt" => {
            c.expect(0)?;
            Ok(Instr::Halt)
        }
        other => Err(AsmError::UnknownMnemonic {
            line,
            mnemonic: other.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_program_assembles() {
        let p = assemble(
            r#"
            start:  li r1, 10
            loop:   addi r1, r1, -1
                    bne r1, r0, loop
                    nop
                    nop
                    halt
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("start"), Some(0));
        assert_eq!(p.symbol("loop"), Some(1));
        match p.instr_at(2).unwrap() {
            Instr::Branch { cond, disp, .. } => {
                assert_eq!(cond, Cond::Ne);
                assert_eq!(disp, -1);
            }
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn memory_operands() {
        let p = assemble("ld r4, -8(r30)\nst r4, 12(r2)\nhalt").unwrap();
        assert_eq!(
            p.instr_at(0).unwrap(),
            Instr::Ld {
                rs1: Reg::new(30),
                rd: Reg::new(4),
                offset: -8
            }
        );
        assert_eq!(
            p.instr_at(1).unwrap(),
            Instr::St {
                rs1: Reg::new(2),
                rsrc: Reg::new(4),
                offset: 12
            }
        );
    }

    #[test]
    fn squash_suffixes() {
        let p = assemble("top: beqsq r1, r2, top\nbeqsqg r1, r2, top\nbeq r1, r2, top").unwrap();
        let modes: Vec<SquashMode> = (0..3)
            .map(|a| match p.instr_at(a).unwrap() {
                Instr::Branch { squash, .. } => squash,
                other => panic!("expected branch, got {other}"),
            })
            .collect();
        assert_eq!(
            modes,
            vec![
                SquashMode::SquashIfNotTaken,
                SquashMode::SquashIfGo,
                SquashMode::NoSquash
            ]
        );
    }

    #[test]
    fn directives() {
        let p = assemble(
            r#"
                    .org 4
            main:   halt
            data:   .word 0x1234
                    .word main
                    .entry main
            "#,
        )
        .unwrap();
        assert_eq!(p.entry, 4);
        assert_eq!(p.word_at(5), Some(0x1234));
        assert_eq!(p.word_at(6), Some(4));
        // Padding before .org is filled with nops.
        assert_eq!(p.instr_at(0).unwrap(), Instr::Nop);
    }

    #[test]
    fn coprocessor_syntax() {
        let p =
            assemble("cpop c5, 100(r0)\nmvtc c1, 3, r9\nmvfc r10, c7, 0\nldf f3, 8(r2)").unwrap();
        assert_eq!(
            p.instr_at(0).unwrap(),
            Instr::Cpop {
                rs1: Reg::ZERO,
                cop: 5,
                op: 100
            }
        );
        assert_eq!(
            p.instr_at(3).unwrap(),
            Instr::Ldf {
                rs1: Reg::new(2),
                fr: 3,
                offset: 8
            }
        );
    }

    #[test]
    fn special_registers() {
        let p = assemble("movfrs r8, pc1\nmovtos psw, r8").unwrap();
        assert_eq!(
            p.instr_at(0).unwrap(),
            Instr::Movfrs {
                rd: Reg::new(8),
                sreg: SpecialReg::PcChain1
            }
        );
    }

    #[test]
    fn errors_are_reported_with_lines() {
        assert!(matches!(
            assemble("frobnicate r1"),
            Err(AsmError::UnknownMnemonic { line: 1, .. })
        ));
        assert!(matches!(
            assemble("\nbeq r1, r2, nowhere"),
            Err(AsmError::UndefinedLabel { line: 2, .. })
        ));
        assert!(matches!(
            assemble("add r1, r2"),
            Err(AsmError::OperandCount { .. })
        ));
        assert!(matches!(
            assemble("li r1, 1000000"),
            Err(AsmError::OutOfRange { .. })
        ));
        assert!(matches!(
            assemble("x: halt\nx: halt"),
            Err(AsmError::DuplicateLabel { line: 2, .. })
        ));
        assert!(matches!(
            assemble(".org 8\n.org 2"),
            Err(AsmError::OrgBackwards { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = assemble("; pure comment\n\n  # another\nnop ; trailing\nhalt # trailing").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn call_ret_pseudos() {
        let p = assemble(
            r#"
            main:   call fn
                    nop
                    nop
                    halt
            fn:     ret
                    nop
                    nop
            "#,
        )
        .unwrap();
        assert_eq!(
            p.instr_at(0).unwrap(),
            Instr::Jspci {
                rs1: Reg::ZERO,
                rd: Reg::LINK,
                imm: 4
            }
        );
        assert_eq!(
            p.instr_at(4).unwrap(),
            Instr::Jspci {
                rs1: Reg::LINK,
                rd: Reg::ZERO,
                imm: 0
            }
        );
    }
}
