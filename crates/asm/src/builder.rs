//! Programmatic assembly builder.

use std::collections::BTreeMap;

use mipsx_isa::{to_signed_field, Cond, Instr, Reg, SquashMode};

use crate::{AsmError, Program};

/// A forward-referenceable code label issued by [`Asm::new_label`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// What a deferred instruction needs patched once label addresses are known.
#[derive(Clone, Copy, Debug)]
enum Fixup {
    /// Patch the 13-bit displacement of a branch at this index.
    BranchDisp(Label),
    /// Patch the 15-bit absolute immediate of a `jspci r?, imm(r0)`.
    JumpAbs(Label),
    /// Patch the 17-bit immediate of an `addi` with the label's address.
    AddrImm(Label),
    /// Replace a data word with the label's address.
    AddrWord(Label),
}

/// Incremental program builder with labels and fixups.
///
/// Used by the synthetic workload generators and the IR backend, which emit
/// large programs where string-based assembly would dominate runtime.
///
/// ```
/// use mipsx_asm::Asm;
/// use mipsx_isa::{Cond, Instr, Reg, SquashMode};
///
/// let mut a = Asm::new(0);
/// let top = a.new_label();
/// a.li(Reg::new(1), 3);
/// a.bind(top)?;
/// a.emit(Instr::Addi { rs1: Reg::new(1), rd: Reg::new(1), imm: -1 });
/// a.branch(Cond::Ne, SquashMode::NoSquash, Reg::new(1), Reg::ZERO, top);
/// a.emit(Instr::Nop);
/// a.emit(Instr::Nop);
/// a.emit(Instr::Halt);
/// let program = a.finish()?;
/// assert_eq!(program.words.len(), 6);
/// # Ok::<(), mipsx_asm::AsmError>(())
/// ```
#[derive(Debug, Default)]
pub struct Asm {
    origin: u32,
    words: Vec<u32>,
    labels: Vec<Option<u32>>,
    named: BTreeMap<String, Label>,
    fixups: Vec<(usize, Fixup)>,
    entry: Option<u32>,
}

impl Asm {
    /// Start building at the given word-address origin.
    pub fn new(origin: u32) -> Asm {
        Asm {
            origin,
            ..Asm::default()
        }
    }

    /// The address the next emitted word will occupy.
    pub fn here(&self) -> u32 {
        self.origin + self.words.len() as u32
    }

    /// Number of words emitted so far.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Create a fresh unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Create (or fetch) a named label, recorded in the program's symbol
    /// table.
    pub fn named_label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.named.get(name) {
            return l;
        }
        let l = self.new_label();
        self.named.insert(name.to_owned(), l);
        l
    }

    /// Bind a label to the current position.
    ///
    /// # Errors
    /// Returns [`AsmError::DuplicateLabel`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        if self.labels[label.0].is_some() {
            return Err(AsmError::DuplicateLabel {
                line: 0,
                label: format!("L{}", label.0),
            });
        }
        self.labels[label.0] = Some(self.here());
        Ok(())
    }

    /// Mark the current position as the program entry point. Defaults to the
    /// origin if never called.
    pub fn set_entry_here(&mut self) {
        self.entry = Some(self.here());
    }

    /// Emit one instruction.
    pub fn emit(&mut self, instr: Instr) {
        self.words.push(instr.encode());
    }

    /// Emit a raw data word.
    pub fn word(&mut self, value: u32) {
        self.words.push(value);
    }

    /// Emit a data word holding a label's address (patched at finish).
    pub fn addr_word(&mut self, label: Label) {
        self.fixups.push((self.words.len(), Fixup::AddrWord(label)));
        self.words.push(0);
    }

    /// Load a 17-bit-signed immediate: `addi rd, r0, imm`.
    pub fn li(&mut self, rd: Reg, imm: i32) {
        self.emit(Instr::Addi {
            rs1: Reg::ZERO,
            rd,
            imm,
        });
    }

    /// Load a label's address into a register (patched at finish;
    /// the address must fit 17 signed bits, which holds for every workload
    /// image in this repository).
    pub fn la(&mut self, rd: Reg, label: Label) {
        self.fixups.push((self.words.len(), Fixup::AddrImm(label)));
        self.emit(Instr::Addi {
            rs1: Reg::ZERO,
            rd,
            imm: 0,
        });
    }

    /// Register-to-register move: `add rd, rs, r0`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instr::Compute {
            op: mipsx_isa::ComputeOp::AddU,
            rs1: rs,
            rs2: Reg::ZERO,
            rd,
            shamt: 0,
        });
    }

    /// Emit a compare-and-branch to a label (displacement patched at finish).
    pub fn branch(&mut self, cond: Cond, squash: SquashMode, rs1: Reg, rs2: Reg, target: Label) {
        self.fixups
            .push((self.words.len(), Fixup::BranchDisp(target)));
        self.emit(Instr::Branch {
            cond,
            squash,
            rs1,
            rs2,
            disp: 0,
        });
    }

    /// Emit an unconditional jump to a label: `jspci r0, addr(r0)`.
    pub fn jump(&mut self, target: Label) {
        self.fixups.push((self.words.len(), Fixup::JumpAbs(target)));
        self.emit(Instr::Jspci {
            rs1: Reg::ZERO,
            rd: Reg::ZERO,
            imm: 0,
        });
    }

    /// Emit a subroutine call: `jspci link, addr(r0)`.
    pub fn call(&mut self, target: Label, link: Reg) {
        self.fixups.push((self.words.len(), Fixup::JumpAbs(target)));
        self.emit(Instr::Jspci {
            rs1: Reg::ZERO,
            rd: link,
            imm: 0,
        });
    }

    /// Emit a subroutine return: `jspci r0, 0(link)`.
    pub fn ret(&mut self, link: Reg) {
        self.emit(Instr::Jspci {
            rs1: link,
            rd: Reg::ZERO,
            imm: 0,
        });
    }

    /// Emit `n` no-ops (delay-slot padding).
    pub fn nops(&mut self, n: usize) {
        for _ in 0..n {
            self.emit(Instr::Nop);
        }
    }

    /// Resolve all fixups and produce the program image.
    ///
    /// # Errors
    /// Returns [`AsmError::UndefinedLabel`] for labels never bound and
    /// [`AsmError::OutOfRange`] when a resolved displacement or address does
    /// not fit its field.
    pub fn finish(self) -> Result<Program, AsmError> {
        let Asm {
            origin,
            mut words,
            labels,
            named,
            fixups,
            entry,
        } = self;

        let resolve = |label: Label| -> Result<u32, AsmError> {
            labels[label.0].ok_or(AsmError::UndefinedLabel {
                line: 0,
                label: format!("L{}", label.0),
            })
        };

        for (index, fixup) in fixups {
            let here = origin + index as u32;
            match fixup {
                Fixup::BranchDisp(target) => {
                    let disp = resolve(target)? as i64 - here as i64;
                    let field = to_signed_field(disp as i32, 13).ok_or(AsmError::OutOfRange {
                        line: 0,
                        what: "branch displacement",
                        value: disp,
                        bits: 13,
                    })?;
                    words[index] = (words[index] & !0x1FFF) | field;
                }
                Fixup::JumpAbs(target) => {
                    let addr = resolve(target)? as i64;
                    let field = to_signed_field(addr as i32, 15).ok_or(AsmError::OutOfRange {
                        line: 0,
                        what: "jump target address",
                        value: addr,
                        bits: 15,
                    })?;
                    words[index] = (words[index] & !0x7FFF) | field;
                }
                Fixup::AddrImm(target) => {
                    let addr = resolve(target)? as i64;
                    let field = to_signed_field(addr as i32, 17).ok_or(AsmError::OutOfRange {
                        line: 0,
                        what: "address immediate",
                        value: addr,
                        bits: 17,
                    })?;
                    words[index] = (words[index] & !0x1FFFF) | field;
                }
                Fixup::AddrWord(target) => {
                    words[index] = resolve(target)?;
                }
            }
        }

        let symbols = named
            .into_iter()
            .map(|(name, l)| resolve(l).map(|addr| (name, addr)))
            .collect::<Result<BTreeMap<_, _>, _>>()?;

        Ok(Program {
            words,
            origin,
            entry: entry.unwrap_or(origin),
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new(0);
        let fwd = a.new_label();
        let back = a.new_label();
        a.bind(back).unwrap();
        a.branch(Cond::Eq, SquashMode::NoSquash, Reg::ZERO, Reg::ZERO, fwd);
        a.nops(2);
        a.branch(Cond::Ne, SquashMode::NoSquash, Reg::new(1), Reg::ZERO, back);
        a.nops(2);
        a.bind(fwd).unwrap();
        a.emit(Instr::Halt);
        let p = a.finish().unwrap();
        match p.instr_at(0).unwrap() {
            Instr::Branch { disp, .. } => assert_eq!(disp, 6),
            other => panic!("expected branch, got {other}"),
        }
        match p.instr_at(3).unwrap() {
            Instr::Branch { disp, .. } => assert_eq!(disp, -3),
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn unbound_label_is_error() {
        let mut a = Asm::new(0);
        let l = a.new_label();
        a.jump(l);
        assert!(matches!(a.finish(), Err(AsmError::UndefinedLabel { .. })));
    }

    #[test]
    fn duplicate_bind_is_error() {
        let mut a = Asm::new(0);
        let l = a.new_label();
        a.bind(l).unwrap();
        assert!(matches!(a.bind(l), Err(AsmError::DuplicateLabel { .. })));
    }

    #[test]
    fn named_labels_land_in_symbol_table() {
        let mut a = Asm::new(0x40);
        let main = a.named_label("main");
        a.bind(main).unwrap();
        a.emit(Instr::Halt);
        let p = a.finish().unwrap();
        assert_eq!(p.symbol("main"), Some(0x40));
    }

    #[test]
    fn la_patches_address() {
        let mut a = Asm::new(0);
        let data = a.new_label();
        a.la(Reg::new(1), data);
        a.emit(Instr::Halt);
        a.bind(data).unwrap();
        a.word(0xDEAD_BEEF);
        let p = a.finish().unwrap();
        match p.instr_at(0).unwrap() {
            Instr::Addi { imm, .. } => assert_eq!(imm, 2),
            other => panic!("expected addi, got {other}"),
        }
    }

    #[test]
    fn addr_word_holds_label_address() {
        let mut a = Asm::new(0x10);
        let tgt = a.new_label();
        a.addr_word(tgt);
        a.bind(tgt).unwrap();
        a.emit(Instr::Halt);
        let p = a.finish().unwrap();
        assert_eq!(p.word_at(0x10), Some(0x11));
    }

    #[test]
    fn branch_out_of_range_reports_error() {
        let mut a = Asm::new(0);
        let far = a.new_label();
        a.branch(Cond::Eq, SquashMode::NoSquash, Reg::ZERO, Reg::ZERO, far);
        for _ in 0..5000 {
            a.emit(Instr::Nop);
        }
        a.bind(far).unwrap();
        a.emit(Instr::Halt);
        assert!(matches!(a.finish(), Err(AsmError::OutOfRange { .. })));
    }

    #[test]
    fn entry_defaults_to_origin() {
        let mut a = Asm::new(7);
        a.emit(Instr::Halt);
        assert_eq!(a.finish().unwrap().entry, 7);
    }

    #[test]
    fn set_entry_here_overrides() {
        let mut a = Asm::new(0);
        a.nops(3);
        a.set_entry_here();
        a.emit(Instr::Halt);
        assert_eq!(a.finish().unwrap().entry, 3);
    }
}
