//! `mipsx` — command-line front end for the MIPS-X reproduction.
//!
//! ```text
//! mipsx asm   <file.s>              assemble, print words as hex
//! mipsx dis   <file.s>              assemble then disassemble (round trip)
//! mipsx run   <file.s> [options]    execute on the cycle-accurate machine
//! mipsx trace <kernel|file.s> [options]
//!                                   execute with the cycle-level probes on:
//!                                   ASCII pipe diagram + CPI attribution
//! mipsx info                        print the modeled machine's parameters
//!
//! run options:
//!   --cycles <n>        cycle budget (default 10,000,000)
//!   --slots <1|2>       branch delay slots (default 2)
//!   --trust             disable interlock checking (model the silicon)
//!   --regs              dump the register file after the run
//!
//! trace options (in addition to --cycles/--slots):
//!   --diagram <n>       render the first n cycles as a pipe diagram
//!                       (default 60; 0 disables)
//!   --jsonl <path>      also write every probe event as JSON lines
//! ```
//!
//! `mipsx trace` accepts either a kernel name from the built-in suite
//! (`mipsx trace fib_recursive`) — the kernel is scheduled by the code
//! reorganizer exactly as the experiments run it — or a path to an
//! assembly file.

use std::process::ExitCode;

use mipsx::asm::{assemble, disassemble};
use mipsx::core::probe::{CpiAttribution, JsonlSink, PipeDiagram};
use mipsx::core::{InterlockPolicy, Machine, MachineConfig};
use mipsx::isa::Reg;
use mipsx::reorg::{BranchScheme, Reorganizer};
use mipsx::workloads::all_kernels;

fn usage() -> ExitCode {
    eprintln!(
        "usage: mipsx <asm|dis|run|trace|info> [file.s|kernel] [--cycles N] [--slots 1|2] \
         [--trust] [--regs] [--diagram N] [--jsonl path]"
    );
    ExitCode::FAILURE
}

/// Resolve the `trace` target: a built-in kernel name (scheduled through
/// the reorganizer) or an assembly file.
fn trace_program(target: &str) -> Result<mipsx::asm::Program, String> {
    if let Some(kernel) = all_kernels().into_iter().find(|k| k.name == target) {
        let reorg = Reorganizer::new(BranchScheme::mipsx());
        let (program, _) = reorg
            .reorganize(&kernel.raw)
            .map_err(|e| format!("kernel {target}: {e}"))?;
        return Ok(program);
    }
    let source = std::fs::read_to_string(target).map_err(|e| {
        let kernels: Vec<&str> = all_kernels().iter().map(|k| k.name).collect();
        format!(
            "{target}: {e} (not a readable file; known kernels: {})",
            kernels.join(", ")
        )
    })?;
    assemble(&source).map_err(|e| format!("{target}: {e}"))
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let Some(target) = args.first() else {
        return usage();
    };
    let mut cycles = 10_000_000u64;
    let mut diagram_cycles = 60u64;
    let mut jsonl_path: Option<String> = None;
    let mut cfg = MachineConfig::mipsx();
    let mut it = args.iter().skip(1);
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--cycles" => cycles = it.next().and_then(|v| v.parse().ok()).unwrap_or(cycles),
            "--slots" => {
                cfg.branch_delay_slots = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.branch_delay_slots)
            }
            "--diagram" => {
                diagram_cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(diagram_cycles)
            }
            "--jsonl" => jsonl_path = it.next().cloned(),
            other => {
                eprintln!("mipsx: unknown option {other}");
                return usage();
            }
        }
    }
    let program = match trace_program(target) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mipsx: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut machine = Machine::new(cfg);
    machine.load_program(&program);

    let diagram = PipeDiagram::with_limit(diagram_cycles.max(1));
    let mut sink = (diagram, CpiAttribution::new());
    let result = match &jsonl_path {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => std::io::BufWriter::new(f),
                Err(e) => {
                    eprintln!("mipsx: cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut jsonl = JsonlSink::new(file);
            let result = machine.run_with(cycles, &mut (&mut sink, &mut jsonl));
            match jsonl.finish() {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("mipsx: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            result
        }
        None => machine.run_with(cycles, &mut sink),
    };
    let (diagram, attribution) = sink;
    if let Err(e) = result {
        eprintln!("mipsx: execution failed: {e}");
        return ExitCode::FAILURE;
    }
    if diagram_cycles > 0 {
        println!(
            "pipe diagram (first {diagram_cycles} cycles; F R A M W = stage, \
             lowercase = killed, * = frozen):"
        );
        print!("{}", diagram.render());
        println!();
    }
    print!("{}", attribution.report());
    println!();
    println!("{}", machine.stats());
    println!("icache: {}", machine.icache().stats());
    print!("{}", machine.icache().occupancy_report());
    println!("ecache: {}", machine.ecache().stats());
    println!("{}", machine.ecache().occupancy_report());
    if !attribution.identity_holds() {
        eprintln!("mipsx: INTERNAL ERROR: CPI attribution does not sum to total cycles");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "info" => {
            let cfg = MachineConfig::mipsx();
            println!("MIPS-X (Chow & Horowitz, ISCA 1987)");
            println!(
                "  clock              : {} MHz (16 MHz first silicon)",
                cfg.clock_mhz
            );
            println!(
                "  pipeline           : IF RF ALU MEM WB, {} branch delay slots",
                cfg.branch_delay_slots
            );
            println!(
                "  icache             : {} words ({} rows x {} ways x {}-word blocks), {}-cycle miss, {}-word fetch-back",
                cfg.icache.size_words(),
                cfg.icache.rows,
                cfg.icache.ways,
                cfg.icache.block_words,
                cfg.icache.miss_penalty,
                cfg.icache.fetch_words
            );
            println!(
                "  ecache             : {} words, {}-word blocks, late-miss retry (+{} cycle)",
                cfg.ecache.size_words, cfg.ecache.block_words, cfg.ecache.late_miss_overhead
            );
            println!(
                "  memory latency     : {} cycles per retry loop",
                cfg.mem_latency
            );
            println!("  coprocessor scheme : {}", cfg.coproc_scheme);
            println!("  exception vector   : {:#x}", cfg.exception_vector);
            ExitCode::SUCCESS
        }
        "trace" => cmd_trace(&args[1..]),
        "asm" | "dis" | "run" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("mipsx: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match assemble(&source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("mipsx: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd.as_str() {
                "asm" => {
                    for (i, w) in program.words.iter().enumerate() {
                        println!("{:#07x}: {w:08x}", program.origin + i as u32);
                    }
                    ExitCode::SUCCESS
                }
                "dis" => {
                    for line in disassemble(program.origin, &program.words) {
                        println!("{line}");
                    }
                    ExitCode::SUCCESS
                }
                _ => {
                    let mut cycles = 10_000_000u64;
                    let mut cfg = MachineConfig::mipsx();
                    let mut dump_regs = false;
                    let mut it = args.iter().skip(2);
                    while let Some(opt) = it.next() {
                        match opt.as_str() {
                            "--cycles" => {
                                cycles = it.next().and_then(|v| v.parse().ok()).unwrap_or(cycles)
                            }
                            "--slots" => {
                                cfg.branch_delay_slots = it
                                    .next()
                                    .and_then(|v| v.parse().ok())
                                    .unwrap_or(cfg.branch_delay_slots)
                            }
                            "--trust" => cfg.interlock = InterlockPolicy::Trust,
                            "--regs" => dump_regs = true,
                            other => {
                                eprintln!("mipsx: unknown option {other}");
                                return usage();
                            }
                        }
                    }
                    let mut machine = Machine::new(cfg);
                    machine.load_program(&program);
                    match machine.run(cycles) {
                        Ok(stats) => {
                            println!("{stats}");
                            println!("icache: {}", machine.icache().stats());
                            println!("ecache: {}", machine.ecache().stats());
                            if dump_regs {
                                for r in Reg::all() {
                                    let v = machine.cpu().reg(r);
                                    if v != 0 {
                                        println!("  {r:>4} = {v:#010x} ({})", v as i32);
                                    }
                                }
                            }
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("mipsx: execution failed: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
            }
        }
        _ => usage(),
    }
}
