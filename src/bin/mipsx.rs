//! `mipsx` — command-line front end for the MIPS-X reproduction.
//!
//! ```text
//! mipsx asm   <file.s>              assemble, print words as hex
//! mipsx dis   <file.s>              assemble then disassemble (round trip)
//! mipsx run   <file.s> [options]    execute on the cycle-accurate machine
//! mipsx trace <kernel|file.s> [options]
//!                                   execute with the cycle-level probes on:
//!                                   ASCII pipe diagram + CPI attribution
//! mipsx soak  [options]             fuzz random programs under random
//!                                   fault plans against the lockstep
//!                                   reference model
//! mipsx lint  <kernel|file.s> [options]
//!                                   static hazard verifier: prove the
//!                                   program satisfies the pipeline
//!                                   contract (load delays, squash
//!                                   senses, MD chains, ...)
//! mipsx info                        print the modeled machine's parameters
//!
//! run options:
//!   --cycles <n>        cycle budget (default 10,000,000)
//!   --slots <1|2>       branch delay slots (default 2)
//!   --trust             disable interlock checking (model the silicon)
//!   --regs              dump the register file after the run
//!
//! trace options (in addition to --cycles/--slots):
//!   --diagram <n>       render the first n cycles as a pipe diagram
//!                       (default 60; 0 disables)
//!   --jsonl <path>      also write every probe event as JSON lines
//!
//! soak options:
//!   --runs <n>          program x fault-plan pairs to run (default 100)
//!   --seed <n>          base seed; run i uses seed n+i (default 1)
//!   --faults <spec>     fixed plan for every run, e.g. "120:irq3,340:nmi"
//!                       (default: a random plan derived from the run seed)
//!   --fault-count <n>   faults per random plan (default 6)
//!   --cycles <n>        lockstep cycle budget per run (default 2,000,000)
//!
//! lint options:
//!   --slots <1|2>       branch delay slots of the contract (default 2);
//!                       kernel targets are rescheduled for that count
//!   --json              machine-readable report
//!   --kernels           lint every built-in kernel under all six Table 1
//!                       branch schemes instead of a single target
//! ```
//!
//! A failing soak run prints a copy-pasteable `mipsx soak --runs 1 --seed N
//! --faults <spec>` line that reproduces it exactly.
//!
//! `mipsx trace` and `mipsx lint` accept either a kernel name from the
//! built-in suite (`mipsx trace fib_recursive`) — the kernel is scheduled
//! by the code reorganizer exactly as the experiments run it — or a path
//! to an assembly file. `mipsx lint` exits non-zero if any error-severity
//! diagnostic is found (warnings alone do not fail the run).

use std::process::ExitCode;

use mipsx::asm::{assemble, assemble_at, disassemble};
use mipsx::core::probe::{CpiAttribution, JsonlSink, PipeDiagram};
use mipsx::core::{FaultPlan, InterlockPolicy, Machine, MachineConfig};
use mipsx::isa::Reg;
use mipsx::refmodel::{Lockstep, NULL_HANDLER};
use mipsx::reorg::{BranchScheme, Reorganizer, SquashPolicy};
use mipsx::verify::{verify, VerifyConfig};
use mipsx::workloads::{all_kernels, random_scheduled_program};

fn usage() -> ExitCode {
    eprintln!(
        "usage: mipsx <asm|dis|run|trace|soak|lint|info> [file.s|kernel] [--cycles N] \
         [--slots 1|2] [--trust] [--regs] [--diagram N] [--jsonl path] [--runs N] [--seed N] \
         [--faults spec] [--fault-count N] [--json] [--kernels]"
    );
    ExitCode::FAILURE
}

/// Resolve the `trace` target: a built-in kernel name (scheduled through
/// the reorganizer) or an assembly file.
fn trace_program(target: &str) -> Result<mipsx::asm::Program, String> {
    if let Some(kernel) = all_kernels().into_iter().find(|k| k.name == target) {
        let reorg = Reorganizer::new(BranchScheme::mipsx());
        let (program, _) = reorg
            .reorganize(&kernel.raw)
            .map_err(|e| format!("kernel {target}: {e}"))?;
        return Ok(program);
    }
    let source = std::fs::read_to_string(target).map_err(|e| {
        let kernels: Vec<&str> = all_kernels().iter().map(|k| k.name).collect();
        format!(
            "{target}: {e} (not a readable file; known kernels: {})",
            kernels.join(", ")
        )
    })?;
    assemble(&source).map_err(|e| format!("{target}: {e}"))
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let Some(target) = args.first() else {
        return usage();
    };
    let mut cycles = 10_000_000u64;
    let mut diagram_cycles = 60u64;
    let mut jsonl_path: Option<String> = None;
    let mut cfg = MachineConfig::mipsx();
    let mut it = args.iter().skip(1);
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--cycles" => cycles = it.next().and_then(|v| v.parse().ok()).unwrap_or(cycles),
            "--slots" => {
                cfg.branch_delay_slots = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(cfg.branch_delay_slots)
            }
            "--diagram" => {
                diagram_cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(diagram_cycles)
            }
            "--jsonl" => jsonl_path = it.next().cloned(),
            other => {
                eprintln!("mipsx: unknown option {other}");
                return usage();
            }
        }
    }
    let program = match trace_program(target) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mipsx: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut machine = Machine::new(cfg);
    machine.load_program(&program);

    let diagram = PipeDiagram::with_limit(diagram_cycles.max(1));
    let mut sink = (diagram, CpiAttribution::new());
    let result = match &jsonl_path {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => std::io::BufWriter::new(f),
                Err(e) => {
                    eprintln!("mipsx: cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut jsonl = JsonlSink::new(file);
            let result = machine.run_with(cycles, &mut (&mut sink, &mut jsonl));
            match jsonl.finish() {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("mipsx: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            result
        }
        None => machine.run_with(cycles, &mut sink),
    };
    let (diagram, attribution) = sink;
    if let Err(e) = result {
        eprintln!("mipsx: execution failed: {e}");
        return ExitCode::FAILURE;
    }
    if diagram_cycles > 0 {
        println!(
            "pipe diagram (first {diagram_cycles} cycles; F R A M W = stage, \
             lowercase = killed, * = frozen):"
        );
        print!("{}", diagram.render());
        println!();
    }
    print!("{}", attribution.report());
    println!();
    println!("{}", machine.stats());
    println!("icache: {}", machine.icache().stats());
    print!("{}", machine.icache().occupancy_report());
    println!("ecache: {}", machine.ecache().stats());
    println!("{}", machine.ecache().occupancy_report());
    if !attribution.identity_holds() {
        eprintln!("mipsx: INTERNAL ERROR: CPI attribution does not sum to total cycles");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Resolve the `lint` target: a built-in kernel name (scheduled through
/// the reorganizer for the requested slot count) or an assembly file.
fn lint_program(target: &str, slots: usize) -> Result<mipsx::asm::Program, String> {
    if let Some(kernel) = all_kernels().into_iter().find(|k| k.name == target) {
        let scheme = BranchScheme {
            slots,
            squash: SquashPolicy::SquashOptional,
        };
        let (program, _) = Reorganizer::new(scheme)
            .reorganize(&kernel.raw)
            .map_err(|e| format!("kernel {target}: {e}"))?;
        return Ok(program);
    }
    let source = std::fs::read_to_string(target).map_err(|e| {
        let kernels: Vec<&str> = all_kernels().iter().map(|k| k.name).collect();
        format!(
            "{target}: {e} (not a readable file; known kernels: {})",
            kernels.join(", ")
        )
    })?;
    assemble(&source).map_err(|e| format!("{target}: {e}"))
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut kernels_mode = false;
    let mut slots = 2usize;
    let mut target: Option<&String> = None;
    let mut it = args.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--json" => json = true,
            "--kernels" => kernels_mode = true,
            "--slots" => slots = it.next().and_then(|v| v.parse().ok()).unwrap_or(slots),
            other if !other.starts_with("--") => target = Some(opt),
            other => {
                eprintln!("mipsx: unknown option {other}");
                return usage();
            }
        }
    }
    if !(1..=2).contains(&slots) {
        eprintln!("mipsx: --slots must be 1 or 2");
        return ExitCode::FAILURE;
    }

    if kernels_mode {
        // Every built-in kernel under every Table 1 branch scheme: the
        // reorganizer's output contract, checked end to end.
        let mut error_total = 0usize;
        let mut json_rows: Vec<String> = Vec::new();
        for kernel in all_kernels() {
            for scheme in BranchScheme::table1() {
                let (program, report) = match Reorganizer::new(scheme).reorganize(&kernel.raw) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("mipsx: kernel {} [{scheme}]: {e}", kernel.name);
                        return ExitCode::FAILURE;
                    }
                };
                let lint = verify(&program, &VerifyConfig::for_slots(scheme.slots));
                error_total += lint.error_count();
                if json {
                    json_rows.push(format!(
                        "{{\"kernel\":\"{}\",\"scheme\":\"{scheme}\",\"verified\":{},\"report\":{}}}",
                        kernel.name,
                        report.verified,
                        lint.to_json()
                    ));
                } else if lint.diagnostics.is_empty() {
                    println!("{:<16} [{scheme}]: clean", kernel.name);
                } else {
                    println!(
                        "{:<16} [{scheme}]: {} error(s), {} warning(s)",
                        kernel.name,
                        lint.error_count(),
                        lint.warning_count()
                    );
                    for d in &lint.diagnostics {
                        println!("  {d}");
                    }
                }
            }
        }
        if json {
            println!("[{}]", json_rows.join(",\n "));
        }
        return if error_total == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let Some(target) = target else {
        return usage();
    };
    let program = match lint_program(target, slots) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mipsx: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lint = verify(&program, &VerifyConfig::for_slots(slots));
    if json {
        println!("{}", lint.to_json());
    } else if lint.diagnostics.is_empty() {
        println!("{target}: clean ({slots}-slot contract)");
    } else {
        print!("{lint}");
        println!(" ({slots}-slot contract)");
    }
    if lint.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Exception vector used by the soak harness: well clear of generated
/// program text and its data region.
const SOAK_VECTOR: u32 = 0x8000;

fn cmd_soak(args: &[String]) -> ExitCode {
    let mut runs = 100u64;
    let mut base_seed = 1u64;
    let mut fault_spec: Option<String> = None;
    let mut fault_count = 6u32;
    let mut cycles = 2_000_000u64;
    let mut it = args.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--runs" => runs = it.next().and_then(|v| v.parse().ok()).unwrap_or(runs),
            "--seed" => base_seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(base_seed),
            "--faults" => fault_spec = it.next().cloned(),
            "--fault-count" => {
                fault_count = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(fault_count)
            }
            "--cycles" => cycles = it.next().and_then(|v| v.parse().ok()).unwrap_or(cycles),
            other => {
                eprintln!("mipsx: unknown option {other}");
                return usage();
            }
        }
    }
    let fixed_plan = match &fault_spec {
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("mipsx: --faults {spec}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let handler = assemble_at(NULL_HANDLER, SOAK_VECTOR).expect("null handler assembles");
    let cfg = MachineConfig {
        exception_vector: SOAK_VECTOR,
        ..MachineConfig::mipsx()
    };

    let mut divergences = 0u64;
    let mut exceptions = 0u64;
    let mut faults = 0u64;
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i);
        let program = random_scheduled_program(seed);
        // Pre-flight: statically verify the generated program, so a
        // generator bug reports as "emitted illegal code" rather than
        // masquerading as a simulator divergence downstream.
        let lint = verify(&program, &VerifyConfig::for_slots(cfg.branch_delay_slots));
        if !lint.is_clean() {
            eprintln!("mipsx: seed {seed}: generator emitted illegal code (not a divergence):");
            eprintln!("{lint}");
            return ExitCode::FAILURE;
        }
        let plan = match &fixed_plan {
            Some(p) => p.clone(),
            None => {
                // Size the plan's horizon to this program's fault-free run
                // so every fault lands inside it.
                let mut m = Machine::new(cfg);
                m.load_program(&program);
                let horizon = match m.run(cycles) {
                    Ok(stats) => stats.cycles,
                    Err(e) => {
                        eprintln!("mipsx: seed {seed}: fault-free baseline failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                FaultPlan::random(seed, horizon, fault_count)
            }
        };
        let plan_spec = plan.to_string();
        faults += plan.events().len() as u64;
        let mut lockstep = Lockstep::new(cfg, &program, plan);
        lockstep.install_handler(&handler);
        lockstep.enable_interrupts();
        match lockstep.run(cycles) {
            Ok(stats) => exceptions += stats.exceptions,
            Err(e) => {
                divergences += 1;
                eprintln!("mipsx: seed {seed}: {e}");
                eprintln!(
                    "  reproduce: mipsx soak --runs 1 --seed {seed} --faults \"{plan_spec}\""
                );
            }
        }
    }
    println!(
        "soak: {runs} runs, {faults} fault events scheduled, {exceptions} exceptions taken, \
         {divergences} divergences"
    );
    if divergences > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "info" => {
            let cfg = MachineConfig::mipsx();
            println!("MIPS-X (Chow & Horowitz, ISCA 1987)");
            println!(
                "  clock              : {} MHz (16 MHz first silicon)",
                cfg.clock_mhz
            );
            println!(
                "  pipeline           : IF RF ALU MEM WB, {} branch delay slots",
                cfg.branch_delay_slots
            );
            println!(
                "  icache             : {} words ({} rows x {} ways x {}-word blocks), {}-cycle miss, {}-word fetch-back",
                cfg.icache.size_words(),
                cfg.icache.rows,
                cfg.icache.ways,
                cfg.icache.block_words,
                cfg.icache.miss_penalty,
                cfg.icache.fetch_words
            );
            println!(
                "  ecache             : {} words, {}-word blocks, late-miss retry (+{} cycle)",
                cfg.ecache.size_words, cfg.ecache.block_words, cfg.ecache.late_miss_overhead
            );
            println!(
                "  memory latency     : {} cycles per retry loop",
                cfg.mem_latency
            );
            println!("  coprocessor scheme : {}", cfg.coproc_scheme);
            println!("  exception vector   : {:#x}", cfg.exception_vector);
            ExitCode::SUCCESS
        }
        "trace" => cmd_trace(&args[1..]),
        "soak" => cmd_soak(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "asm" | "dis" | "run" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("mipsx: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match assemble(&source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("mipsx: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd.as_str() {
                "asm" => {
                    for (i, w) in program.words.iter().enumerate() {
                        println!("{:#07x}: {w:08x}", program.origin + i as u32);
                    }
                    ExitCode::SUCCESS
                }
                "dis" => {
                    for line in disassemble(program.origin, &program.words) {
                        println!("{line}");
                    }
                    ExitCode::SUCCESS
                }
                _ => {
                    let mut cycles = 10_000_000u64;
                    let mut cfg = MachineConfig::mipsx();
                    let mut dump_regs = false;
                    let mut it = args.iter().skip(2);
                    while let Some(opt) = it.next() {
                        match opt.as_str() {
                            "--cycles" => {
                                cycles = it.next().and_then(|v| v.parse().ok()).unwrap_or(cycles)
                            }
                            "--slots" => {
                                cfg.branch_delay_slots = it
                                    .next()
                                    .and_then(|v| v.parse().ok())
                                    .unwrap_or(cfg.branch_delay_slots)
                            }
                            "--trust" => cfg.interlock = InterlockPolicy::Trust,
                            "--regs" => dump_regs = true,
                            other => {
                                eprintln!("mipsx: unknown option {other}");
                                return usage();
                            }
                        }
                    }
                    let mut machine = Machine::new(cfg);
                    machine.load_program(&program);
                    match machine.run(cycles) {
                        Ok(stats) => {
                            println!("{stats}");
                            println!("icache: {}", machine.icache().stats());
                            println!("ecache: {}", machine.ecache().stats());
                            if dump_regs {
                                for r in Reg::all() {
                                    let v = machine.cpu().reg(r);
                                    if v != 0 {
                                        println!("  {r:>4} = {v:#010x} ({})", v as i32);
                                    }
                                }
                            }
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("mipsx: execution failed: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
            }
        }
        _ => usage(),
    }
}
