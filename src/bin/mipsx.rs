//! `mipsx` — command-line front end for the MIPS-X reproduction.
//!
//! ```text
//! mipsx asm   <file.s>              assemble, print words as hex
//! mipsx dis   <file.s>              assemble then disassemble (round trip)
//! mipsx run   <file.s> [options]    execute on the cycle-accurate machine
//! mipsx trace <kernel|file.s> [options]
//!                                   execute with the cycle-level probes on:
//!                                   ASCII pipe diagram + CPI attribution
//! mipsx soak  [options]             fuzz random programs under random
//!                                   fault plans against the lockstep
//!                                   reference model
//! mipsx lint  <kernel|file.s> [options]
//!                                   static hazard verifier: prove the
//!                                   program satisfies the pipeline
//!                                   contract (load delays, squash
//!                                   senses, MD chains, ...)
//! mipsx analyze <kernel|file.s> [options]
//!                                   static timing analyzer: per-block
//!                                   cost table (delay-slot waste,
//!                                   liveness, loop depth) and the
//!                                   whole-program static CPI bound
//! mipsx sweep [spec.sweep] [options]
//!                                   design-space exploration: expand a
//!                                   sweep grid, run it on a thread pool,
//!                                   serve repeats from the result cache
//! mipsx profile <kernel|file.s|spec.sweep> [options]
//!                                   run with host telemetry on and print
//!                                   a span-tree wall-time report (stage
//!                                   attribution, pool occupancy, store
//!                                   latencies)
//! mipsx snapshot save <kernel|file.s> --out <path> [options]
//!                                   run for --cycles, then write a
//!                                   restorable machine snapshot
//! mipsx snapshot restore <path> [--cycles N]
//!                                   restore a snapshot, run it to
//!                                   completion, print the final stats
//! mipsx snapshot info <path>        print a snapshot's header, section
//!                                   sizes and checksum without restoring
//! mipsx info                        print the modeled machine's parameters
//!
//! run options:
//!   --cycles <n>        cycle budget (default 10,000,000)
//!   --slots <1|2>       branch delay slots (default 2)
//!   --trust             disable interlock checking (model the silicon)
//!   --ideal             use the ideal-cache configuration (no memory
//!                       stalls) instead of the MIPS-X board
//!   --engine <interp|block|checked>
//!                       execution backend: `block` runs the basic-block
//!                       superop engine (fast, cycle-identical; demotes
//!                       itself to the stepper when it must), `checked`
//!                       shadows every step with the functional reference
//!                       model, `interp` the cycle-accurate stepper
//!                       (default)
//!   --regs              dump the register file after the run
//!
//! trace options (in addition to --cycles/--slots):
//!   --diagram <n>       render the first n cycles as a pipe diagram
//!                       (default 60; 0 disables)
//!   --jsonl <path>      also write every probe event as JSON lines
//!   --from-cycle <k>    fast-forward k cycles untraced, then attach the
//!                       probes (the diagram shows cycles k..k+n; JSONL
//!                       lines keep their absolute cycle numbers)
//!
//! soak options:
//!   --runs <n>          program x fault-plan pairs to run (default 100)
//!   --seed <n>          base seed; run i uses seed n+i (default 1)
//!   --faults <spec>     fixed plan for every run, e.g. "120:irq3,340:nmi"
//!                       (default: a random plan derived from the run seed)
//!   --fault-count <n>   faults per random plan (default 6)
//!   --cycles <n>        lockstep cycle budget per run (default 2,000,000)
//!   --snap-dir <dir>    where a diverging run's last-good machine
//!                       snapshot lands (default: the system temp dir)
//!
//! lint options:
//!   --slots <1|2>       branch delay slots of the contract (default 2);
//!                       kernel targets are rescheduled for that count
//!   --json              machine-readable report
//!   --kernels           lint every built-in kernel under all six Table 1
//!                       branch schemes instead of a single target; one
//!                       summary line per scheme, detail where findings
//!                       exist, non-zero exit only on errors
//!   --timing            add the four scheduling-quality lints
//!                       (missed-slot-fill, redundant-nop,
//!                       avoidable-load-stall, cross-block-hazard-at-join)
//!
//! analyze options:
//!   --slots <1|2>       branch delay slots (default 2), as in lint
//!   --json              machine-readable analysis
//!   --kernels           analyze every built-in kernel under all six
//!                       Table 1 branch schemes
//!   --differential      also run the program fault-free on the
//!                       cache-ideal machine with the per-block dynamic
//!                       attributor attached, and check that the static
//!                       model predicts every per-block counter exactly;
//!                       any mismatch exits non-zero
//!   --cycles <n>        differential run budget (default 10,000,000)
//!
//! sweep options:
//!   <spec.sweep>        spec file (see mipsx_explore::SweepSpec::parse);
//!                       or build the grid from flags:
//!   --grid f=v1,v2      one axis (repeatable), e.g. --grid mem_latency=3,5
//!   --workload <id>     workload (repeatable): kernel:<name>,
//!                       synth:<pascal|lisp|tiny>:<seed>,
//!                       trace:<medium|large>:<seed>, stream:<words>x<reps>
//!   --fault <spec>      fault plan cell (repeatable; "none" = fault-free)
//!   --base <mipsx|ideal> base configuration (default mipsx)
//!   --engine <interp|block|checked>
//!                       base execution backend (default interp); also an
//!                       axis: --grid engine=interp,block sweeps it
//!   --cycles <n>        per-job cycle budget (default 500,000,000)
//!   --threads <n>       worker threads (default: all cores)
//!   --json | --csv      report format (default: markdown table)
//!   --store <dir>       result-cache directory (default $MIPSX_SWEEP_DIR
//!                       or sweeps/)
//!   --no-cache          disable the result cache entirely
//!   --bench <path>      run the built-in E1+E11 grids serial vs parallel
//!                       on cold caches, verify byte-identical reports,
//!                       and write the timing baseline JSON to <path>
//!   --metrics <path>    record host telemetry and write it to <path>
//!                       (JSON) plus a Prometheus text exposition at
//!                       <path>.prom
//!   --timings           render the timed report variants (adds per-job
//!                       wall_ms; no longer byte-comparable across runs)
//!   --journal <path>    crash-safe progress journal: one flushed line per
//!                       completed job, in-flight machine checkpoints in
//!                       <path>.snaps/
//!   --snapshot-every <n> checkpoint running machines every n cycles
//!                       (requires --journal; 0 disables checkpoints)
//!   --resume            replay an existing journal: completed jobs come
//!                       from the result store, checkpointed jobs resume
//!                       mid-run; refuses a journal from a different spec
//!
//! snapshot options:
//!   --cycles <n>        save: cycles to run before snapshotting (0 =
//!                       snapshot the freshly loaded machine);
//!                       restore: further cycle budget (default 10,000,000)
//!   --slots <1|2>       save: branch delay slots (default 2)
//!   --faults <spec>     save: fault plan; its delivery cursor rides in
//!                       the snapshot, so restore continues it exactly
//!   --out <path>        save: where the snapshot is written (required)
//!
//! profile options:
//!   a kernel name or .s file profiles a single run (assemble, machine
//!   construction, program decode, execution — plus host steps/s);
//!   `--engine <interp|block|checked>` picks the backend, and a block run
//!   prints its fallback-cause breakdown; a .sweep file or
//!   --grid/--workload flags profile a whole sweep with the same flags as
//!   `mipsx sweep`. `--metrics <path>` works here too.
//! ```
//!
//! A failing soak run prints a copy-pasteable `mipsx soak --runs 1 --seed N
//! --faults <spec>` line that reproduces it exactly.
//!
//! `mipsx trace` and `mipsx lint` accept either a kernel name from the
//! built-in suite (`mipsx trace fib_recursive`) — the kernel is scheduled
//! by the code reorganizer exactly as the experiments run it — or a path
//! to an assembly file. `mipsx lint` exits non-zero if any error-severity
//! diagnostic is found (warnings alone do not fail the run).
//!
//! The sweep report goes to stdout; timing and cache-hit chatter goes to
//! stderr, so reports are byte-comparable across runs and thread counts.

use std::process::ExitCode;

use mipsx::asm::{assemble, assemble_at, disassemble};
use mipsx::cli::{flag, parse_args, switch, ArgError, FlagSpec, ParsedArgs};
use mipsx::core::probe::{CpiAttribution, JsonlSink, NullSink, PipeDiagram};
use mipsx::core::{FaultPlan, InterlockPolicy, Machine, MachineConfig, RunError};
use mipsx::exec::{AnyBackend, EngineKind, ExecBackend};
use mipsx::explore::{
    run_sweep, Axis, Grid, JournalConfig, ResultStore, SimPoint, SweepOptions, SweepSpec,
    Telemetry, Workload,
};
use mipsx::isa::Reg;
use mipsx::refmodel::{Lockstep, NULL_HANDLER};
use mipsx::reorg::{BranchScheme, Reorganizer, SquashPolicy};
use mipsx::verify::{
    differential, verify, verify_with_timing, BlockAttribution, TimingAnalysis, VerifyConfig,
};
use mipsx::workloads::{all_kernels, find_kernel, kernel_names, random_scheduled_program};

fn usage() -> ExitCode {
    eprintln!(
        "usage: mipsx <asm|dis|run|trace|soak|lint|analyze|sweep|profile|snapshot|info> \
         [file.s|kernel|spec.sweep] \
         [--cycles N] [--slots 1|2] [--trust] [--ideal] [--engine interp|block|checked] [--regs] \
         [--diagram N] [--jsonl path] \
         [--from-cycle K] [--runs N] \
         [--seed N] [--faults spec] [--fault-count N] [--snap-dir dir] [--json] [--kernels] \
         [--timing] [--differential] \
         [--grid f=v1,v2] \
         [--workload id] [--fault spec] [--base mipsx|ideal] [--threads N] [--csv] \
         [--store dir] [--no-cache] [--bench path] [--metrics path] [--timings] \
         [--journal path] [--snapshot-every N] [--resume] [--out path]"
    );
    ExitCode::FAILURE
}

/// Parse a subcommand's arguments, printing the error and usage on
/// failure.
fn parse_or_usage(args: &[String], spec: &[FlagSpec]) -> Result<ParsedArgs, ExitCode> {
    parse_args(args, spec).map_err(|e| {
        eprintln!("mipsx: {e}");
        usage()
    })
}

/// `parsed_or` with the subcommand's error rendering.
fn numeric<T: std::str::FromStr>(
    parsed: &ParsedArgs,
    name: &str,
    default: T,
) -> Result<T, ExitCode> {
    parsed.parsed_or(name, default).map_err(|e: ArgError| {
        eprintln!("mipsx: {e}");
        ExitCode::FAILURE
    })
}

/// Resolve a `trace`/`lint` target: a built-in kernel name (scheduled
/// through the reorganizer under `scheme`) or an assembly file.
fn target_program(target: &str, scheme: BranchScheme) -> Result<mipsx::asm::Program, String> {
    if let Some(kernel) = find_kernel(target) {
        let (program, _) = Reorganizer::new(scheme)
            .reorganize(&kernel.raw)
            .map_err(|e| format!("kernel {target}: {e}"))?;
        return Ok(program);
    }
    let source = std::fs::read_to_string(target).map_err(|e| {
        format!(
            "{target}: {e} (not a readable file; known kernels: {})",
            kernel_names().join(", ")
        )
    })?;
    assemble(&source).map_err(|e| format!("{target}: {e}"))
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let parsed = match parse_or_usage(
        args,
        &[
            flag("--cycles"),
            flag("--slots"),
            flag("--diagram"),
            flag("--jsonl"),
            flag("--from-cycle"),
        ],
    ) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let Some(target) = parsed.positionals.first() else {
        return usage();
    };
    let (cycles, diagram_cycles, slots, from_cycle) = match (
        numeric(&parsed, "--cycles", 10_000_000u64),
        numeric(&parsed, "--diagram", 60u64),
        numeric(&parsed, "--slots", 2usize),
        numeric(&parsed, "--from-cycle", 0u64),
    ) {
        (Ok(c), Ok(d), Ok(s), Ok(f)) => (c, d, s, f),
        (Err(code), ..) | (_, Err(code), ..) | (_, _, Err(code), _) | (.., Err(code)) => {
            return code
        }
    };
    if from_cycle >= cycles {
        eprintln!("mipsx: --from-cycle {from_cycle} must be below the --cycles budget {cycles}");
        return ExitCode::FAILURE;
    }
    let mut cfg = MachineConfig::mipsx();
    cfg.branch_delay_slots = slots;
    let program = match target_program(target, BranchScheme::mipsx()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mipsx: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut machine = Machine::new(cfg);
    machine.load_program(&program);

    // Fast-forward untraced: probes are pure observers, so skipping them
    // for the first k cycles cannot change how the machine evolves.
    if from_cycle > 0 {
        match machine.run(from_cycle) {
            Err(RunError::CycleLimit { .. }) => {}
            Ok(stats) => {
                eprintln!(
                    "mipsx: program halted at cycle {} — nothing left to trace \
                     from cycle {from_cycle}",
                    stats.cycles
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("mipsx: execution failed before --from-cycle {from_cycle}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let budget = cycles - from_cycle;

    let diagram = PipeDiagram::with_limit(diagram_cycles.max(1));
    let mut sink = (diagram, CpiAttribution::new());
    let result = match parsed.value("--jsonl") {
        Some(path) => {
            let file = match std::fs::File::create(path) {
                Ok(f) => std::io::BufWriter::new(f),
                Err(e) => {
                    eprintln!("mipsx: cannot create {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut jsonl = JsonlSink::new(file);
            let result = machine.run_with(budget, &mut (&mut sink, &mut jsonl));
            match jsonl.finish() {
                Ok(_) => {}
                Err(e) => {
                    eprintln!("mipsx: writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            result
        }
        None => machine.run_with(budget, &mut sink),
    };
    let (diagram, attribution) = sink;
    if let Err(e) = result {
        eprintln!("mipsx: execution failed: {e}");
        return ExitCode::FAILURE;
    }
    if diagram_cycles > 0 {
        println!(
            "pipe diagram ({diagram_cycles} cycles from cycle {from_cycle}; F R A M W = stage, \
             lowercase = killed, * = frozen):"
        );
        print!("{}", diagram.render());
        println!();
    }
    print!("{}", attribution.report());
    println!();
    println!("{}", machine.stats());
    println!("icache: {}", machine.icache().stats());
    print!("{}", machine.icache().occupancy_report());
    println!("ecache: {}", machine.ecache().stats());
    println!("{}", machine.ecache().occupancy_report());
    if !attribution.identity_holds() {
        eprintln!("mipsx: INTERNAL ERROR: CPI attribution does not sum to total cycles");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let parsed = match parse_or_usage(
        args,
        &[
            switch("--json"),
            switch("--kernels"),
            switch("--timing"),
            flag("--slots"),
        ],
    ) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let json = parsed.has("--json");
    let timing = parsed.has("--timing");
    let slots = match numeric(&parsed, "--slots", 2usize) {
        Ok(s) => s,
        Err(code) => return code,
    };
    if !(1..=2).contains(&slots) {
        eprintln!("mipsx: --slots must be 1 or 2");
        return ExitCode::FAILURE;
    }
    let run_lint = |program: &mipsx::asm::Program, cfg: &VerifyConfig| {
        if timing {
            verify_with_timing(program, cfg)
        } else {
            verify(program, cfg)
        }
    };

    if parsed.has("--kernels") {
        // Every built-in kernel under every Table 1 branch scheme: the
        // reorganizer's output contract, checked end to end. One summary
        // line per scheme; kernel detail only where something fired. The
        // exit code reflects error-severity findings only.
        let mut error_total = 0usize;
        let mut scheme_rows: Vec<String> = Vec::new();
        for scheme in BranchScheme::table1() {
            let vcfg = VerifyConfig::for_slots(scheme.slots);
            let mut errors = 0usize;
            let mut warnings = 0usize;
            let mut kernel_rows: Vec<String> = Vec::new();
            let mut details: Vec<String> = Vec::new();
            for kernel in all_kernels() {
                let (program, report) = match Reorganizer::new(scheme).reorganize(&kernel.raw) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("mipsx: kernel {} [{scheme}]: {e}", kernel.name);
                        return ExitCode::FAILURE;
                    }
                };
                let lint = run_lint(&program, &vcfg);
                errors += lint.error_count();
                warnings += lint.warning_count();
                if json {
                    kernel_rows.push(format!(
                        "{{\"kernel\":\"{}\",\"verified\":{},\"report\":{}}}",
                        kernel.name,
                        report.verified,
                        lint.to_json()
                    ));
                } else {
                    for d in &lint.diagnostics {
                        details.push(format!("  {:<16} {d}", kernel.name));
                    }
                }
            }
            error_total += errors;
            if json {
                scheme_rows.push(format!(
                    "{{\"scheme\":\"{scheme}\",\"errors\":{errors},\"warnings\":{warnings},\
                     \"kernels\":[{}]}}",
                    kernel_rows.join(",")
                ));
            } else {
                println!(
                    "{scheme}: {} kernel(s), {errors} error(s), {warnings} warning(s)",
                    all_kernels().len()
                );
                for d in &details {
                    println!("{d}");
                }
            }
        }
        if json {
            println!("[{}]", scheme_rows.join(",\n "));
        }
        return if error_total == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let Some(target) = parsed.positionals.first() else {
        return usage();
    };
    let scheme = BranchScheme {
        slots,
        squash: SquashPolicy::SquashOptional,
    };
    let program = match target_program(target, scheme) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mipsx: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lint = run_lint(&program, &VerifyConfig::for_slots(slots));
    if json {
        println!("{}", lint.to_json());
    } else if lint.diagnostics.is_empty() {
        println!("{target}: clean ({slots}-slot contract)");
    } else {
        print!("{lint}");
        println!(" ({slots}-slot contract)");
    }
    if lint.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Run `program` fault-free on the cache-ideal configuration with the
/// per-block attributor attached, and check every static identity.
/// Returns the violation list (empty = exact match).
fn run_differential(
    program: &mipsx::asm::Program,
    ta: &TimingAnalysis,
    slots: usize,
    budget: u64,
) -> Result<Vec<String>, String> {
    let cfg = MachineConfig {
        branch_delay_slots: slots,
        ..MachineConfig::cache_ideal()
    };
    let mut machine = Machine::new(cfg);
    machine.load_program(program);
    let mut attrib = BlockAttribution::new(ta);
    let stats = machine
        .run_with(budget, &mut attrib)
        .map_err(|e| e.to_string())?;
    Ok(differential(ta, &attrib, &stats))
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let parsed = match parse_or_usage(
        args,
        &[
            switch("--json"),
            switch("--kernels"),
            switch("--differential"),
            flag("--slots"),
            flag("--cycles"),
        ],
    ) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let json = parsed.has("--json");
    let diff = parsed.has("--differential");
    let (slots, budget) = match (
        numeric(&parsed, "--slots", 2usize),
        numeric(&parsed, "--cycles", 10_000_000u64),
    ) {
        (Ok(s), Ok(b)) => (s, b),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    if !(1..=2).contains(&slots) {
        eprintln!("mipsx: --slots must be 1 or 2");
        return ExitCode::FAILURE;
    }

    if parsed.has("--kernels") {
        // Every kernel under every Table 1 scheme: static bound per cell,
        // and with --differential the exact static-vs-dynamic check that
        // CI gates on.
        let mut violations = 0usize;
        let mut rows: Vec<String> = Vec::new();
        for scheme in BranchScheme::table1() {
            let vcfg = VerifyConfig::for_slots(scheme.slots);
            for kernel in all_kernels() {
                let (program, _) = match Reorganizer::new(scheme).reorganize(&kernel.raw) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("mipsx: kernel {} [{scheme}]: {e}", kernel.name);
                        return ExitCode::FAILURE;
                    }
                };
                let ta = TimingAnalysis::of(&program, &vcfg);
                let errs = if diff {
                    match run_differential(&program, &ta, scheme.slots, budget) {
                        Ok(errs) => Some(errs),
                        Err(e) => {
                            eprintln!("mipsx: kernel {} [{scheme}]: {e}", kernel.name);
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    None
                };
                if let Some(errs) = &errs {
                    violations += errs.len();
                }
                if json {
                    let diff_json = match &errs {
                        None => String::new(),
                        Some(errs) => format!(
                            ",\"differential_violations\":[{}]",
                            errs.iter()
                                .map(|e| format!("\"{}\"", e.replace('"', "'")))
                                .collect::<Vec<_>>()
                                .join(",")
                        ),
                    };
                    rows.push(format!(
                        "{{\"kernel\":\"{}\",\"scheme\":\"{scheme}\",\
                         \"static_cpi_bound\":{:.4},\"blocks\":{}{diff_json}}}",
                        kernel.name,
                        ta.static_cpi_bound(),
                        ta.blocks.len()
                    ));
                } else {
                    let verdict = match &errs {
                        None => String::new(),
                        Some(e) if e.is_empty() => ", differential exact".to_string(),
                        Some(e) => format!(", {} DIFFERENTIAL VIOLATION(S)", e.len()),
                    };
                    println!(
                        "{:<16} [{scheme}]: bound {:.4}, {} block(s){verdict}",
                        kernel.name,
                        ta.static_cpi_bound(),
                        ta.blocks.len()
                    );
                    if let Some(errs) = &errs {
                        for e in errs {
                            println!("  {e}");
                        }
                    }
                }
            }
        }
        if json {
            println!("[{}]", rows.join(",\n "));
        }
        return if violations == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let Some(target) = parsed.positionals.first() else {
        return usage();
    };
    let scheme = BranchScheme {
        slots,
        squash: SquashPolicy::SquashOptional,
    };
    let program = match target_program(target, scheme) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mipsx: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ta = TimingAnalysis::of(&program, &VerifyConfig::for_slots(slots));
    let errs = if diff {
        if ta.irregular {
            eprintln!("mipsx: {target}: irregular control flow — exact differential unavailable");
            return ExitCode::FAILURE;
        }
        match run_differential(&program, &ta, slots, budget) {
            Ok(errs) => Some(errs),
            Err(e) => {
                eprintln!("mipsx: {target}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    if json {
        match &errs {
            None => println!("{}", ta.to_json()),
            Some(errs) => println!(
                "{{\"analysis\":{},\"differential_violations\":[{}]}}",
                ta.to_json(),
                errs.iter()
                    .map(|e| format!("\"{}\"", e.replace('"', "'")))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        }
    } else {
        print!("{}", ta.render());
        match &errs {
            None => {}
            Some(e) if e.is_empty() => println!("differential: exact (cache-ideal, fault-free)"),
            Some(e) => {
                println!("differential: {} violation(s)", e.len());
                for v in e {
                    println!("  {v}");
                }
            }
        }
    }
    if errs.as_ref().is_none_or(|e| e.is_empty()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Exception vector used by the soak harness: well clear of generated
/// program text and its data region.
const SOAK_VECTOR: u32 = 0x8000;

/// Cycles between last-good checkpoints inside a soak run: coarse enough
/// to stay off the profile, fine enough that the written snapshot lands
/// within a few thousand cycles of the divergence.
const SOAK_CHECKPOINT_CYCLES: u64 = 2048;

fn cmd_soak(args: &[String]) -> ExitCode {
    let parsed = match parse_or_usage(
        args,
        &[
            flag("--runs"),
            flag("--seed"),
            flag("--faults"),
            flag("--fault-count"),
            flag("--cycles"),
            flag("--snap-dir"),
        ],
    ) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let (runs, base_seed, fault_count, cycles) = match (
        numeric(&parsed, "--runs", 100u64),
        numeric(&parsed, "--seed", 1u64),
        numeric(&parsed, "--fault-count", 6u32),
        numeric(&parsed, "--cycles", 2_000_000u64),
    ) {
        (Ok(r), Ok(s), Ok(f), Ok(c)) => (r, s, f, c),
        (Err(code), ..) | (_, Err(code), ..) | (_, _, Err(code), _) | (.., Err(code)) => {
            return code
        }
    };
    let fixed_plan = match parsed.value("--faults") {
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("mipsx: --faults {spec}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let handler = assemble_at(NULL_HANDLER, SOAK_VECTOR).expect("null handler assembles");
    let snap_dir = parsed
        .value("--snap-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let cfg = MachineConfig {
        exception_vector: SOAK_VECTOR,
        ..MachineConfig::mipsx()
    };

    let mut divergences = 0u64;
    let mut exceptions = 0u64;
    let mut faults = 0u64;
    for i in 0..runs {
        let seed = base_seed.wrapping_add(i);
        let program = random_scheduled_program(seed);
        // Pre-flight: statically verify the generated program, so a
        // generator bug reports as "emitted illegal code" rather than
        // masquerading as a simulator divergence downstream.
        let lint = verify(&program, &VerifyConfig::for_slots(cfg.branch_delay_slots));
        if !lint.is_clean() {
            eprintln!("mipsx: seed {seed}: generator emitted illegal code (not a divergence):");
            eprintln!("{lint}");
            return ExitCode::FAILURE;
        }
        let plan = match &fixed_plan {
            Some(p) => p.clone(),
            None => {
                // Size the plan's horizon to this program's fault-free run
                // so every fault lands inside it.
                let mut m = Machine::new(cfg);
                m.load_program(&program);
                let horizon = match m.run(cycles) {
                    Ok(stats) => stats.cycles,
                    Err(e) => {
                        eprintln!("mipsx: seed {seed}: fault-free baseline failed: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                FaultPlan::random(seed, horizon, fault_count)
            }
        };
        let plan_spec = plan.to_string();
        faults += plan.events().len() as u64;
        let mut lockstep = Lockstep::new(cfg, &program, plan);
        lockstep.install_handler(&handler);
        lockstep.enable_interrupts();
        // Step with a checkpoint cadence: the last snapshot taken before a
        // divergence is written out, so the failing window can be replayed
        // under `mipsx snapshot restore` / a debugger without re-running
        // the whole soak from cycle zero.
        let mut last_good: Option<(u64, Vec<u8>)> = None;
        let mut since_checkpoint = 0u64;
        let outcome = loop {
            if lockstep.machine().stats().cycles >= cycles {
                break Ok(());
            }
            match lockstep.step() {
                Ok(true) => break Ok(()),
                Ok(false) => {}
                Err(e) => break Err(e),
            }
            since_checkpoint += 1;
            if since_checkpoint >= SOAK_CHECKPOINT_CYCLES {
                since_checkpoint = 0;
                if let Ok(bytes) = lockstep.machine().save_snapshot(None) {
                    last_good = Some((lockstep.machine().stats().cycles, bytes));
                }
            }
        };
        match outcome {
            Ok(()) => exceptions += lockstep.machine().stats().exceptions,
            Err(e) => {
                divergences += 1;
                eprintln!("mipsx: seed {seed}: {e}");
                if let Some((cycle, bytes)) = last_good {
                    let path = snap_dir.join(format!("soak-seed{seed}-cycle{cycle}.msnap"));
                    match std::fs::write(&path, &bytes) {
                        Ok(()) => {
                            eprintln!("  last-good snapshot (cycle {cycle}): {}", path.display());
                        }
                        Err(e) => eprintln!("  could not write last-good snapshot: {e}"),
                    }
                }
                eprintln!(
                    "  reproduce: mipsx soak --runs 1 --seed {seed} --faults \"{plan_spec}\""
                );
            }
        }
    }
    println!(
        "soak: {runs} runs, {faults} fault events scheduled, {exceptions} exceptions taken, \
         {divergences} divergences"
    );
    if divergences > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_run(path: &str, args: &[String]) -> ExitCode {
    let parsed = match parse_or_usage(
        args,
        &[
            flag("--cycles"),
            flag("--slots"),
            flag("--engine"),
            switch("--trust"),
            switch("--ideal"),
            switch("--regs"),
        ],
    ) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let (cycles, slots) = match (
        numeric(&parsed, "--cycles", 10_000_000u64),
        numeric(&parsed, "--slots", 2usize),
    ) {
        (Ok(c), Ok(s)) => (c, s),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mipsx: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mipsx: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let kind = match parsed.value("--engine").map(EngineKind::parse) {
        None => EngineKind::Interp,
        Some(Ok(kind)) => kind,
        Some(Err(e)) => {
            eprintln!("mipsx: --engine: {e}");
            return ExitCode::FAILURE;
        }
    };
    if kind == EngineKind::Checked && slots != 2 {
        eprintln!("mipsx: --engine checked models the 2-delay-slot pipeline only");
        return ExitCode::FAILURE;
    }
    let mut cfg = if parsed.has("--ideal") {
        MachineConfig::cache_ideal()
    } else {
        MachineConfig::mipsx()
    };
    cfg.branch_delay_slots = slots;
    if parsed.has("--trust") {
        cfg.interlock = InterlockPolicy::Trust;
    }
    let mut machine = Machine::new(cfg);
    machine.load_program(&program);
    let mut backend = AnyBackend::new(kind, &program, &machine);
    let result = backend
        .run(&mut machine, cycles)
        .and_then(|stats| backend.final_check(&machine).map(|()| stats));
    if let Some(es) = backend.engine_stats() {
        println!(
            "engine: {} blocks compiled ({} fallback-only), {} visits, \
             {} fast cycles, {} recompiles",
            es.blocks_compiled, es.fallback_blocks, es.block_visits, es.fast_cycles, es.recompiles
        );
        for (cause, count) in es.fallback_breakdown() {
            println!("engine: fallback {cause:<16} x{count}");
        }
    }
    match result {
        Ok(stats) => {
            println!("{stats}");
            // The block engine only fast-paths ideal-cache configs; its
            // demoted runs still keep the cache books, so print them in
            // the stepper-driven modes only (where they are the point).
            if kind != EngineKind::Block {
                println!("icache: {}", machine.icache().stats());
                println!("ecache: {}", machine.ecache().stats());
            }
            if parsed.has("--regs") {
                for r in Reg::all() {
                    let v = machine.cpu().reg(r);
                    if v != 0 {
                        println!("  {r:>4} = {v:#010x} ({})", v as i32);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mipsx: execution failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Build a [`SweepSpec`] from a spec file or from `--grid`/`--workload`
/// flags.
fn sweep_spec_from(parsed: &ParsedArgs) -> Result<SweepSpec, String> {
    let mut spec = match parsed.positionals.first() {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            SweepSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => SweepSpec::new(SimPoint::mipsx()),
    };
    match parsed.value("--base") {
        None => {}
        Some("mipsx") => spec.base = SimPoint::mipsx(),
        Some("ideal") => spec.base = SimPoint::ideal_memory(),
        Some(other) => return Err(format!("--base {other}: expected mipsx or ideal")),
    }
    if let Some(kind) = parsed.value("--engine") {
        spec.base.engine = EngineKind::parse(kind).map_err(|e| format!("--engine: {e}"))?;
    }
    let flag_axes: Vec<Axis> = parsed
        .values_of("--grid")
        .map(|g| Axis::parse_flag(g).map_err(|e| e.to_string()))
        .collect::<Result<_, String>>()?;
    if !flag_axes.is_empty() {
        match &mut spec.grid {
            Grid::Axes(axes) => axes.extend(flag_axes),
            Grid::Points(_) => return Err("--grid cannot extend an explicit point list".into()),
        }
    }
    for id in parsed.values_of("--workload") {
        spec.workloads
            .push(Workload::parse(id).map_err(|e| e.to_string())?);
    }
    let flag_faults: Vec<Option<String>> = parsed
        .values_of("--fault")
        .map(|f| {
            if f == "none" {
                None
            } else {
                Some(f.to_owned())
            }
        })
        .collect();
    if !flag_faults.is_empty() {
        spec.faults = flag_faults;
    }
    if let Some(cycles) = parsed.value("--cycles") {
        spec.run_cycles = cycles
            .parse()
            .map_err(|_| format!("--cycles {cycles}: expected a cycle count"))?;
    }
    Ok(spec)
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn cmd_sweep(args: &[String]) -> ExitCode {
    let parsed = match parse_or_usage(
        args,
        &[
            flag("--grid"),
            flag("--workload"),
            flag("--fault"),
            flag("--base"),
            flag("--engine"),
            flag("--cycles"),
            flag("--threads"),
            flag("--store"),
            switch("--json"),
            switch("--csv"),
            switch("--no-cache"),
            flag("--bench"),
            flag("--metrics"),
            switch("--timings"),
            flag("--journal"),
            flag("--snapshot-every"),
            switch("--resume"),
        ],
    ) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let (threads, snapshot_every) = match (
        numeric(&parsed, "--threads", default_threads()),
        numeric(&parsed, "--snapshot-every", 0u64),
    ) {
        (Ok(t), Ok(s)) => (t, s),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let journal = match parsed.value("--journal") {
        Some(path) => Some(JournalConfig {
            path: path.into(),
            resume: parsed.has("--resume"),
            snapshot_interval: snapshot_every,
        }),
        None => {
            if parsed.has("--resume") || snapshot_every > 0 {
                eprintln!("mipsx: --resume and --snapshot-every require --journal <path>");
                return ExitCode::FAILURE;
            }
            None
        }
    };
    if let Some(bench_path) = parsed.value("--bench") {
        return sweep_bench(bench_path, threads.max(2));
    }
    let spec = match sweep_spec_from(&parsed) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mipsx: {e}");
            return ExitCode::FAILURE;
        }
    };
    let store = if parsed.has("--no-cache") {
        ResultStore::disabled()
    } else {
        match parsed.value("--store") {
            Some(dir) => ResultStore::at(dir),
            None => ResultStore::at(ResultStore::default_dir()),
        }
    };
    let telemetry = match parsed.value("--metrics") {
        Some(_) => Telemetry::enabled(),
        None => Telemetry::disabled(),
    };
    let opts = SweepOptions {
        threads,
        store,
        telemetry,
        journal,
        ..SweepOptions::default()
    };
    let outcome = match run_sweep(&spec, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mipsx: sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let timed = parsed.has("--timings");
    if parsed.has("--json") {
        if timed {
            println!("{}", outcome.to_json_timed());
        } else {
            println!("{}", outcome.to_json());
        }
    } else if parsed.has("--csv") {
        if timed {
            print!("{}", outcome.to_csv_timed());
        } else {
            print!("{}", outcome.to_csv());
        }
    } else {
        print!("{}", outcome.to_markdown());
    }
    if let Some(path) = parsed.value("--metrics") {
        if let Err(e) = write_metrics(path, &opts.telemetry.snapshot()) {
            eprintln!("mipsx: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Quarantined jobs never abort the sweep (the report above is
    // complete), but each one gets a reproduction line and the exit code
    // says the run was not clean.
    for row in &outcome.rows {
        if let Some(msg) = &row.failed {
            eprintln!(
                "mipsx: quarantined: {} | {}{}: {msg}",
                row.point_label,
                row.workload,
                match &row.fault {
                    Some(f) => format!(" (faults {f})"),
                    None => String::new(),
                },
            );
        }
    }
    eprintln!(
        "mipsx sweep: {} jobs on {} thread(s) in {:.2?} ({} from cache, {} quarantined)",
        outcome.rows.len(),
        threads,
        outcome.wall,
        outcome.cache_hits,
        outcome.failed_count(),
    );
    if outcome.failed_count() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Write a telemetry snapshot to `path` as JSON, plus the Prometheus text
/// exposition next to it at `<path>.prom`.
fn write_metrics(path: &str, snapshot: &mipsx::telemetry::Snapshot) -> Result<(), String> {
    std::fs::write(path, snapshot.to_json() + "\n")
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    let prom = format!("{path}.prom");
    std::fs::write(&prom, snapshot.to_prometheus())
        .map_err(|e| format!("cannot write {prom}: {e}"))?;
    eprintln!("mipsx: metrics written to {path} and {prom}");
    Ok(())
}

/// The `--bench` mode: run the E1 and E11 experiment grids serial and
/// parallel on *cold* caches, check the reports match byte for byte, check
/// a warm re-run is served fully from cache, and write the timing baseline.
fn sweep_bench(path: &str, threads: usize) -> ExitCode {
    let grids: [(&str, SweepSpec); 2] = [
        (
            "e1_branch_schemes",
            mipsx::bench::experiments::e1_branch_schemes::sweep_spec(),
        ),
        (
            "e11_ecache",
            mipsx::bench::experiments::e11_ecache::sweep_spec(),
        ),
    ];
    let mut entries: Vec<String> = Vec::new();
    for (name, spec) in grids {
        let cold = |threads: usize, telemetry: Telemetry| {
            let opts = SweepOptions {
                threads,
                store: mipsx::explore::temp_store(&format!("bench-{name}-{threads}")),
                telemetry,
                ..SweepOptions::default()
            };
            let start = std::time::Instant::now();
            let outcome = run_sweep(&spec, &opts).expect("bench sweep");
            (outcome, start.elapsed(), opts.store)
        };
        // One untimed warm-up run: the first sweep in a fresh process is
        // up to 2x slower (page faults, allocator growth, CPU frequency
        // ramp), which would poison every ratio derived below.
        let _ = cold(1, Telemetry::disabled());
        let (serial, serial_wall, _) = cold(1, Telemetry::disabled());
        let (parallel, parallel_wall, warm_store) = cold(threads, Telemetry::disabled());
        let identical = serial.to_json() == parallel.to_json();
        // A third cold serial run with telemetry live prices the
        // instrumentation itself: enabled wall / disabled wall.
        let (traced, traced_wall, _) = cold(1, Telemetry::enabled());
        let telemetry_identical = traced.to_json() == serial.to_json();
        let telemetry_overhead = traced_wall.as_secs_f64() / serial_wall.as_secs_f64().max(1e-9);
        // Re-run against the parallel run's store: every job must hit.
        let rerun = run_sweep(
            &spec,
            &SweepOptions {
                threads,
                store: warm_store,
                ..SweepOptions::default()
            },
        )
        .expect("bench rerun");
        let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);
        eprintln!(
            "mipsx sweep --bench {name}: {} jobs, serial {serial_wall:.2?}, \
             {threads} threads {parallel_wall:.2?} ({speedup:.2}x), identical={identical}, \
             telemetry {telemetry_overhead:.3}x, rerun {}/{} from cache",
            serial.rows.len(),
            rerun.cache_hits,
            rerun.rows.len(),
        );
        if !identical || !telemetry_identical {
            eprintln!("mipsx: BENCH FAILURE: reports differ across thread/telemetry modes");
            return ExitCode::FAILURE;
        }
        if rerun.cache_hits != rerun.rows.len() {
            eprintln!("mipsx: BENCH FAILURE: warm re-run was not fully served from cache");
            return ExitCode::FAILURE;
        }
        entries.push(format!(
            "{{\"grid\":\"{name}\",\"jobs\":{},\"threads\":{threads},\
             \"serial_ms\":{},\"parallel_ms\":{},\"speedup\":{speedup:.3},\
             \"telemetry_overhead\":{telemetry_overhead:.3},\
             \"byte_identical\":true,\"rerun_cache_hits\":{},\"rerun_jobs\":{}}}",
            serial.rows.len(),
            serial_wall.as_millis(),
            parallel_wall.as_millis(),
            rerun.cache_hits,
            rerun.rows.len(),
        ));
    }
    // Speedups are only meaningful relative to the cores the host actually
    // had, so the baseline records it.
    let doc = format!(
        "{{\"bench\":\"mipsx sweep --bench\",\"host_cpus\":{},\"grids\":[{}]}}\n",
        default_threads(),
        entries.join(",")
    );
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("mipsx: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{doc}");
    ExitCode::SUCCESS
}

/// `mipsx profile`: run with host telemetry live and print the span-tree
/// wall-time report. A kernel name or `.s` file profiles one run
/// (assemble / construct / decode / run stages plus the host simulation
/// rate); a `.sweep` file or `--grid`/`--workload` flags profile a whole
/// sweep, including pool occupancy and store latency metrics.
fn cmd_profile(args: &[String]) -> ExitCode {
    let parsed = match parse_or_usage(
        args,
        &[
            flag("--grid"),
            flag("--workload"),
            flag("--fault"),
            flag("--base"),
            flag("--engine"),
            flag("--cycles"),
            flag("--threads"),
            flag("--slots"),
            flag("--store"),
            flag("--metrics"),
        ],
    ) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let tele = Telemetry::enabled();
    let sweep_mode = match parsed.positionals.first() {
        Some(t) => t.ends_with(".sweep"),
        None => true,
    };

    if sweep_mode {
        let spec = match sweep_spec_from(&parsed) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mipsx: {e}");
                return ExitCode::FAILURE;
            }
        };
        if spec.workloads.is_empty() {
            eprintln!(
                "mipsx: profile: give a kernel name, a .s file, a .sweep file, or --workload flags"
            );
            return usage();
        }
        let threads = match numeric(&parsed, "--threads", default_threads()) {
            Ok(t) => t,
            Err(code) => return code,
        };
        let store = match parsed.value("--store") {
            Some(dir) => ResultStore::at(dir),
            None => ResultStore::disabled(),
        };
        let opts = SweepOptions {
            threads,
            store,
            telemetry: tele.clone(),
            ..SweepOptions::default()
        };
        let outcome = match run_sweep(&spec, &opts) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("mipsx: sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let snap = tele.snapshot();
        println!(
            "profile: {} jobs on {} thread(s) in {:.2?} ({} from cache)",
            outcome.rows.len(),
            threads,
            outcome.wall,
            outcome.cache_hits
        );
        println!();
        print!("{}", snap.span_tree_report());
        let busy = snap
            .timing_counters
            .get("pool.busy_ns")
            .copied()
            .unwrap_or(0);
        let idle = snap
            .timing_counters
            .get("pool.idle_ns")
            .copied()
            .unwrap_or(0);
        if busy + idle > 0 {
            println!();
            println!(
                "pool: {} worker(s), busy {:.1} ms, idle {:.1} ms ({:.1}% occupancy), {} steal(s)",
                snap.gauges.get("pool.workers").copied().unwrap_or(0),
                busy as f64 / 1e6,
                idle as f64 / 1e6,
                100.0 * busy as f64 / (busy + idle) as f64,
                snap.timing_counters
                    .get("pool.steals")
                    .copied()
                    .unwrap_or(0),
            );
        }
        let guest_cycles = snap.counter("guest.cycles");
        if guest_cycles > 0 {
            println!(
                "guest: {guest_cycles} cycles simulated, {:.2} Mcycles/s of host time",
                guest_cycles as f64 / outcome.wall.as_secs_f64().max(1e-9) / 1e6
            );
        }
        if let Some(path) = parsed.value("--metrics") {
            if let Err(e) = write_metrics(path, &snap) {
                eprintln!("mipsx: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    // Single-target mode: one program, one machine, stage spans by hand.
    let target = parsed.positionals.first().expect("checked above");
    let (cycles, slots) = match (
        numeric(&parsed, "--cycles", 10_000_000u64),
        numeric(&parsed, "--slots", 2usize),
    ) {
        (Ok(c), Ok(s)) => (c, s),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let kind = match parsed.value("--engine").map(EngineKind::parse) {
        None => EngineKind::Interp,
        Some(Ok(kind)) => kind,
        Some(Err(e)) => {
            eprintln!("mipsx: --engine: {e}");
            return ExitCode::FAILURE;
        }
    };
    if kind == EngineKind::Checked && slots != 2 {
        eprintln!("mipsx: --engine checked models the 2-delay-slot pipeline only");
        return ExitCode::FAILURE;
    }
    let root = tele.span_root("profile");
    let program = {
        let _s = tele.span("assemble");
        match target_program(target, BranchScheme::mipsx()) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mipsx: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let mut cfg = MachineConfig::mipsx();
    cfg.branch_delay_slots = slots;
    let mut machine = {
        let _s = tele.span("construct");
        Machine::new(cfg)
    };
    {
        let _s = tele.span("decode");
        machine.load_program(&program);
    }
    let mut backend = {
        // Only the block backend does real work here (compiling the
        // image into superop blocks); the span prices exactly that.
        let _s = (kind == EngineKind::Block).then(|| tele.span("compile"));
        AnyBackend::new(kind, &program, &machine)
    };
    let run_start = std::time::Instant::now();
    let stats = {
        let _s = tele.span("run");
        let finished = backend
            .run(&mut machine, cycles)
            .and_then(|s| backend.final_check(&machine).map(|()| s));
        match finished {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mipsx: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let run_wall = run_start.elapsed();
    drop(root);
    let snap = tele.snapshot();
    println!("profile: {target} ({cycles} cycle budget)");
    println!();
    print!("{}", snap.span_tree_report());
    println!();
    println!(
        "run: {} guest cycles in {run_wall:.2?} — {:.2} Mcycles/s, {:.2} Minstr/s of host time",
        stats.cycles,
        stats.host_cycles_per_sec(run_wall) / 1e6,
        stats.dynamic_instructions() as f64 / run_wall.as_secs_f64().max(1e-9) / 1e6,
    );
    println!("guest: {stats}");
    if let Some(es) = backend.engine_stats() {
        println!();
        println!(
            "engine: {} blocks compiled ({} fallback-only), {} visits, \
             {} fast cycles ({:.1}% of run), {} recompiles",
            es.blocks_compiled,
            es.fallback_blocks,
            es.block_visits,
            es.fast_cycles,
            100.0 * es.fast_cycles as f64 / (stats.cycles as f64).max(1.0),
            es.recompiles,
        );
        if es.total_fallbacks() == 0 {
            println!("engine: no stepper fallbacks");
        }
        for (cause, count) in es.fallback_breakdown() {
            println!("engine: fallback {cause:<16} x{count}");
        }
    }
    if let Some(path) = parsed.value("--metrics") {
        if let Err(e) = write_metrics(path, &snap) {
            eprintln!("mipsx: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `mipsx snapshot <save|restore|info>`: the checkpoint/restore surface.
///
/// `save` runs a target for `--cycles` and writes the machine (plus the
/// fault plan's delivery cursor) to `--out`; `restore` reads a snapshot
/// back in a *fresh process* and runs it to completion, printing the same
/// stats block a from-scratch run would — so CI can diff the two outputs
/// byte for byte; `info` prints the self-describing header without
/// constructing a machine at all.
fn cmd_snapshot(args: &[String]) -> ExitCode {
    let Some(action) = args.first() else {
        eprintln!("mipsx: snapshot: expected save, restore or info");
        return usage();
    };
    match action.as_str() {
        "save" => snapshot_save(&args[1..]),
        "restore" => snapshot_restore(&args[1..]),
        "info" => snapshot_info(&args[1..]),
        other => {
            eprintln!("mipsx: snapshot {other}: expected save, restore or info");
            usage()
        }
    }
}

fn snapshot_save(args: &[String]) -> ExitCode {
    let parsed = match parse_or_usage(
        args,
        &[
            flag("--cycles"),
            flag("--slots"),
            flag("--faults"),
            flag("--out"),
        ],
    ) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let Some(target) = parsed.positionals.first() else {
        return usage();
    };
    let Some(out) = parsed.value("--out") else {
        eprintln!("mipsx: snapshot save: --out <path> is required");
        return ExitCode::FAILURE;
    };
    let (cycles, slots) = match (
        numeric(&parsed, "--cycles", 0u64),
        numeric(&parsed, "--slots", 2usize),
    ) {
        (Ok(c), Ok(s)) => (c, s),
        (Err(code), _) | (_, Err(code)) => return code,
    };
    let mut plan = match parsed.value("--faults") {
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mipsx: --faults {spec}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => FaultPlan::none(),
    };
    let program = match target_program(target, BranchScheme::mipsx()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("mipsx: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = MachineConfig::mipsx();
    cfg.branch_delay_slots = slots;
    let mut machine = Machine::new(cfg);
    machine.load_program(&program);
    // --cycles 0 snapshots the freshly loaded machine: restoring that is
    // exactly a from-scratch run, which gives CI its reference output.
    if cycles > 0 {
        match machine.run_with_faults(cycles, &mut NullSink, &mut plan) {
            Err(RunError::CycleLimit { .. }) => {}
            Ok(stats) => eprintln!(
                "mipsx: note: program halted at cycle {} (before the {cycles}-cycle mark); \
                 snapshotting the final state",
                stats.cycles
            ),
            Err(e) => {
                eprintln!("mipsx: execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let bytes = match machine.save_snapshot(Some(&plan)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mipsx: snapshot failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(out, &bytes) {
        eprintln!("mipsx: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("mipsx: {} bytes written to {out}", bytes.len());
    match mipsx::core::snapshot::inspect(&bytes) {
        Ok(info) => print!("{info}"),
        Err(e) => {
            eprintln!("mipsx: INTERNAL ERROR: just-written snapshot does not inspect: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn snapshot_restore(args: &[String]) -> ExitCode {
    let parsed = match parse_or_usage(args, &[flag("--cycles")]) {
        Ok(p) => p,
        Err(code) => return code,
    };
    let Some(path) = parsed.positionals.first() else {
        return usage();
    };
    let cycles = match numeric(&parsed, "--cycles", 10_000_000u64) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mipsx: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (mut machine, plan) = match Machine::restore_snapshot(&bytes) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("mipsx: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut plan = plan.unwrap_or_else(FaultPlan::none);
    if !machine.halted() {
        if let Err(e) = machine.run_with_faults(cycles, &mut NullSink, &mut plan) {
            eprintln!("mipsx: execution failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("{}", machine.stats());
    println!("icache: {}", machine.icache().stats());
    println!("ecache: {}", machine.ecache().stats());
    ExitCode::SUCCESS
}

fn snapshot_info(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mipsx: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mipsx::core::snapshot::inspect(&bytes) {
        Ok(info) => {
            print!("{info}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mipsx: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "info" => {
            let cfg = MachineConfig::mipsx();
            println!("MIPS-X (Chow & Horowitz, ISCA 1987)");
            println!(
                "  clock              : {} MHz (16 MHz first silicon)",
                cfg.clock_mhz
            );
            println!(
                "  pipeline           : IF RF ALU MEM WB, {} branch delay slots",
                cfg.branch_delay_slots
            );
            println!(
                "  icache             : {} words ({} rows x {} ways x {}-word blocks), {}-cycle miss, {}-word fetch-back",
                cfg.icache.size_words(),
                cfg.icache.rows,
                cfg.icache.ways,
                cfg.icache.block_words,
                cfg.icache.miss_penalty,
                cfg.icache.fetch_words
            );
            println!(
                "  ecache             : {} words, {}-word blocks, late-miss retry (+{} cycle)",
                cfg.ecache.size_words, cfg.ecache.block_words, cfg.ecache.late_miss_overhead
            );
            println!(
                "  memory latency     : {} cycles per retry loop",
                cfg.mem_latency
            );
            println!("  coprocessor scheme : {}", cfg.coproc_scheme);
            println!("  exception vector   : {:#x}", cfg.exception_vector);
            ExitCode::SUCCESS
        }
        "trace" => cmd_trace(&args[1..]),
        "soak" => cmd_soak(&args[1..]),
        "lint" => cmd_lint(&args[1..]),
        "analyze" => cmd_analyze(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "profile" => cmd_profile(&args[1..]),
        "snapshot" => cmd_snapshot(&args[1..]),
        "asm" | "dis" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("mipsx: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match assemble(&source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("mipsx: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if cmd == "asm" {
                for (i, w) in program.words.iter().enumerate() {
                    println!("{:#07x}: {w:08x}", program.origin + i as u32);
                }
            } else {
                for line in disassemble(program.origin, &program.words) {
                    println!("{line}");
                }
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            cmd_run(path, &args[2..])
        }
        _ => usage(),
    }
}
