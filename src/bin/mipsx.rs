//! `mipsx` — command-line front end for the MIPS-X reproduction.
//!
//! ```text
//! mipsx asm  <file.s>              assemble, print words as hex
//! mipsx dis  <file.s>              assemble then disassemble (round trip)
//! mipsx run  <file.s> [options]    execute on the cycle-accurate machine
//! mipsx info                       print the modeled machine's parameters
//!
//! run options:
//!   --cycles <n>        cycle budget (default 10,000,000)
//!   --slots <1|2>       branch delay slots (default 2)
//!   --trust             disable interlock checking (model the silicon)
//!   --regs              dump the register file after the run
//! ```

use std::process::ExitCode;

use mipsx::asm::{assemble, disassemble};
use mipsx::core::{InterlockPolicy, Machine, MachineConfig};
use mipsx::isa::Reg;

fn usage() -> ExitCode {
    eprintln!(
        "usage: mipsx <asm|dis|run|info> [file.s] [--cycles N] [--slots 1|2] [--trust] [--regs]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "info" => {
            let cfg = MachineConfig::mipsx();
            println!("MIPS-X (Chow & Horowitz, ISCA 1987)");
            println!("  clock              : {} MHz (16 MHz first silicon)", cfg.clock_mhz);
            println!("  pipeline           : IF RF ALU MEM WB, {} branch delay slots", cfg.branch_delay_slots);
            println!(
                "  icache             : {} words ({} rows x {} ways x {}-word blocks), {}-cycle miss, {}-word fetch-back",
                cfg.icache.size_words(),
                cfg.icache.rows,
                cfg.icache.ways,
                cfg.icache.block_words,
                cfg.icache.miss_penalty,
                cfg.icache.fetch_words
            );
            println!(
                "  ecache             : {} words, {}-word blocks, late-miss retry (+{} cycle)",
                cfg.ecache.size_words, cfg.ecache.block_words, cfg.ecache.late_miss_overhead
            );
            println!("  memory latency     : {} cycles per retry loop", cfg.mem_latency);
            println!("  coprocessor scheme : {}", cfg.coproc_scheme);
            println!("  exception vector   : {:#x}", cfg.exception_vector);
            ExitCode::SUCCESS
        }
        "asm" | "dis" | "run" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("mipsx: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = match assemble(&source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("mipsx: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd.as_str() {
                "asm" => {
                    for (i, w) in program.words.iter().enumerate() {
                        println!("{:#07x}: {w:08x}", program.origin + i as u32);
                    }
                    ExitCode::SUCCESS
                }
                "dis" => {
                    for line in disassemble(program.origin, &program.words) {
                        println!("{line}");
                    }
                    ExitCode::SUCCESS
                }
                _ => {
                    let mut cycles = 10_000_000u64;
                    let mut cfg = MachineConfig::mipsx();
                    let mut dump_regs = false;
                    let mut it = args.iter().skip(2);
                    while let Some(opt) = it.next() {
                        match opt.as_str() {
                            "--cycles" => {
                                cycles = it
                                    .next()
                                    .and_then(|v| v.parse().ok())
                                    .unwrap_or(cycles)
                            }
                            "--slots" => {
                                cfg.branch_delay_slots = it
                                    .next()
                                    .and_then(|v| v.parse().ok())
                                    .unwrap_or(cfg.branch_delay_slots)
                            }
                            "--trust" => cfg.interlock = InterlockPolicy::Trust,
                            "--regs" => dump_regs = true,
                            other => {
                                eprintln!("mipsx: unknown option {other}");
                                return usage();
                            }
                        }
                    }
                    let mut machine = Machine::new(cfg);
                    machine.load_program(&program);
                    match machine.run(cycles) {
                        Ok(stats) => {
                            println!("{stats}");
                            println!("icache: {}", machine.icache().stats());
                            println!("ecache: {}", machine.ecache().stats());
                            if dump_regs {
                                for r in Reg::all() {
                                    let v = machine.cpu().reg(r);
                                    if v != 0 {
                                        println!("  {r:>4} = {v:#010x} ({})", v as i32);
                                    }
                                }
                            }
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("mipsx: execution failed: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
            }
        }
        _ => usage(),
    }
}
