//! Shared command-line flag parsing for the `mipsx` binary.
//!
//! Every subcommand used to hand-roll the same `while let Some(opt) =
//! it.next()` loop — with the same two bugs waiting to happen: a flag at
//! the end of the line silently swallowing its missing value, and a typo'd
//! value silently falling back to the default. This module centralizes the
//! loop: a subcommand declares its flags once, and lookups are typed and
//! fail loudly.
//!
//! ```
//! use mipsx::cli::{flag, parse_args, switch};
//!
//! let args: Vec<String> = ["prog.s", "--cycles", "500", "--regs"]
//!     .iter().map(|s| s.to_string()).collect();
//! let parsed = parse_args(&args, &[flag("--cycles"), switch("--regs")])?;
//! assert_eq!(parsed.positionals, ["prog.s"]);
//! assert_eq!(parsed.parsed_or("--cycles", 10u64)?, 500);
//! assert!(parsed.has("--regs"));
//! # Ok::<(), mipsx::cli::ArgError>(())
//! ```

use std::fmt;

/// A flag-parsing error. `Display` renders the user-facing message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ArgError {
    /// An option that is not in the subcommand's flag set.
    UnknownFlag(String),
    /// A value-taking flag appeared as the last argument.
    MissingValue(String),
    /// A flag's value failed to parse.
    InvalidValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected (e.g. `u64`).
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::UnknownFlag(flag) => write!(f, "unknown option {flag}"),
            ArgError::MissingValue(flag) => write!(f, "option {flag} needs a value"),
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(
                f,
                "option {flag}: bad value {value:?} (expected {expected})"
            ),
        }
    }
}

impl std::error::Error for ArgError {}

/// One declared flag.
#[derive(Clone, Copy, Debug)]
pub struct FlagSpec {
    /// The flag, including the leading dashes.
    pub name: &'static str,
    /// Whether the flag consumes the next argument as its value.
    pub takes_value: bool,
}

/// Declare a value-taking flag (`--cycles N`).
pub const fn flag(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: true,
    }
}

/// Declare a boolean switch (`--regs`).
pub const fn switch(name: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        takes_value: false,
    }
}

/// The parsed argument list.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    /// `(flag, value)` occurrences of value-taking flags, in order.
    pub values: Vec<(&'static str, String)>,
    /// Switches seen.
    pub switches: Vec<&'static str>,
    /// Arguments that are not flags (targets, file paths).
    pub positionals: Vec<String>,
}

impl ParsedArgs {
    /// Whether `name` (switch or value flag) appeared.
    pub fn has(&self, name: &str) -> bool {
        self.switches.contains(&name) || self.values.iter().any(|(n, _)| *n == name)
    }

    /// The last value given for `name`, if any.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for `name`, in order (for repeatable flags).
    pub fn values_of<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.values
            .iter()
            .filter(move |(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parse the last value of `name` as a `T`, or return `default` when
    /// the flag is absent. Unlike the old hand-rolled loops, an
    /// *unparsable* value is an error, not a silent default.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::InvalidValue {
                flag: name.to_owned(),
                value: v.to_owned(),
                expected: std::any::type_name::<T>()
                    .rsplit("::")
                    .next()
                    .unwrap_or("value"),
            }),
        }
    }
}

/// Parse `args` against the declared `spec`. Arguments starting with `--`
/// must be declared flags; everything else collects into
/// [`ParsedArgs::positionals`].
pub fn parse_args(args: &[String], spec: &[FlagSpec]) -> Result<ParsedArgs, ArgError> {
    let mut parsed = ParsedArgs::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if !arg.starts_with("--") {
            parsed.positionals.push(arg.clone());
            continue;
        }
        let Some(decl) = spec.iter().find(|f| f.name == arg.as_str()) else {
            return Err(ArgError::UnknownFlag(arg.clone()));
        };
        if decl.takes_value {
            let Some(value) = it.next() else {
                return Err(ArgError::MissingValue(arg.clone()));
            };
            parsed.values.push((decl.name, value.clone()));
        } else {
            parsed.switches.push(decl.name);
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let e = parse_args(&argv(&["--bogus"]), &[flag("--cycles")]).unwrap_err();
        assert_eq!(e, ArgError::UnknownFlag("--bogus".into()));
        assert_eq!(e.to_string(), "unknown option --bogus");
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = parse_args(&argv(&["--cycles"]), &[flag("--cycles")]).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("--cycles".into()));
        assert_eq!(e.to_string(), "option --cycles needs a value");
    }

    #[test]
    fn invalid_value_is_an_error_not_a_silent_default() {
        let parsed = parse_args(&argv(&["--cycles", "lots"]), &[flag("--cycles")]).unwrap();
        let e = parsed.parsed_or("--cycles", 7u64).unwrap_err();
        assert!(
            matches!(&e, ArgError::InvalidValue { flag, value, .. }
                if flag == "--cycles" && value == "lots"),
            "{e:?}"
        );
        assert!(e.to_string().contains("u64"), "{e}");
    }

    #[test]
    fn values_switches_and_positionals_separate() {
        let parsed = parse_args(
            &argv(&["prog.s", "--cycles", "500", "--regs", "extra"]),
            &[flag("--cycles"), switch("--regs")],
        )
        .unwrap();
        assert_eq!(parsed.positionals, ["prog.s", "extra"]);
        assert_eq!(parsed.parsed_or("--cycles", 0u64).unwrap(), 500);
        assert!(parsed.has("--regs"));
        assert!(!parsed.has("--trust"));
        assert_eq!(parsed.parsed_or("--slots", 2usize).unwrap(), 2);
    }

    #[test]
    fn repeated_flags_keep_every_value_and_last_wins_for_scalar() {
        let parsed = parse_args(
            &argv(&[
                "--grid", "a=1", "--grid", "b=2", "--cycles", "1", "--cycles", "2",
            ]),
            &[flag("--grid"), flag("--cycles")],
        )
        .unwrap();
        let grids: Vec<&str> = parsed.values_of("--grid").collect();
        assert_eq!(grids, ["a=1", "b=2"]);
        assert_eq!(parsed.parsed_or("--cycles", 0u64).unwrap(), 2);
    }
}
