//! # mipsx — a full reproduction of the MIPS-X processor
//!
//! This facade crate re-exports the whole workspace reproducing
//! *Architectural Tradeoffs in the Design of MIPS-X* (Paul Chow and Mark
//! Horowitz, ISCA 1987): the instruction set, an assembler, a cycle-accurate
//! five-stage pipeline with the paper's squash and cache-miss finite state
//! machines, the on-chip instruction cache and external cache with the
//! late-miss protocol, the coprocessor interface, the code reorganizer that
//! fills branch and load delay slots, calibrated workloads, a VAX-like
//! baseline, and the experiment harness that regenerates every table and
//! figure of the paper's evaluation.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`isa`] | `mipsx-isa` | instruction formats, encode/decode, PSW, registers |
//! | [`asm`] | `mipsx-asm` | two-pass assembler, builder API, disassembler |
//! | [`mem`] | `mipsx-mem` | Icache, Ecache (late miss), main memory |
//! | [`core`] | `mipsx-core` | the pipeline, exceptions, FSMs, PC unit |
//! | [`coproc`] | `mipsx-coproc` | coprocessor interface schemes, FPU |
//! | [`reorg`] | `mipsx-reorg` | delay-slot filling, branch schemes, quick compare |
//! | [`verify`] | `mipsx-verify` | static hazard verifier / lint pass over program images |
//! | [`refmodel`] | `mipsx-ref` | functional reference interpreter, lockstep differ |
//! | [`workloads`] | `mipsx-workloads` | kernels + synthetic Pascal/Lisp generators |
//! | [`baseline`] | `mipsx-baseline` | IR with MIPS-X and VAX-like backends |
//! | [`bench`] | `mipsx-bench` | the paper's experiments (E1..E11) |
//! | [`engine`] | `mipsx-engine` | basic-block superop execution engine (fast path) |
//! | [`exec`] | `mipsx-exec` | pluggable execution backends (stepper, block engine, checked) |
//! | [`explore`] | `mipsx-explore` | design-space sweep engine, result cache, thread pool |
//! | [`telemetry`] | `mipsx-telemetry` | host observability: spans, metrics registry, exporters |
//!
//! ## Quickstart
//!
//! ```
//! use mipsx::asm::assemble;
//! use mipsx::core::{Machine, MachineConfig};
//!
//! let program = assemble(
//!     "li r1, 6\nli r2, 0\nloop: add r2, r2, r1\naddi r1, r1, -1\n\
//!      bne r1, r0, loop\nnop\nnop\nhalt",
//! )?;
//! let mut machine = Machine::new(MachineConfig::default());
//! machine.load_program(&program);
//! let stats = machine.run(100_000)?;
//! assert_eq!(machine.cpu().reg(mipsx::isa::Reg::new(2)), 21); // 6+5+..+1
//! assert!(stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cli;

pub use mipsx_asm as asm;
pub use mipsx_baseline as baseline;
pub use mipsx_bench as bench;
pub use mipsx_coproc as coproc;
pub use mipsx_core as core;
pub use mipsx_engine as engine;
pub use mipsx_exec as exec;
pub use mipsx_explore as explore;
pub use mipsx_isa as isa;
pub use mipsx_mem as mem;
// `ref` is a keyword, so the reference-model crate surfaces as `refmodel`.
pub use mipsx_ref as refmodel;
pub use mipsx_reorg as reorg;
pub use mipsx_telemetry as telemetry;
pub use mipsx_verify as verify;
pub use mipsx_workloads as workloads;
