; Deliberately broken program for the `mipsx lint` golden test.
; Each section violates a different rule of the pipeline contract; the
; expected diagnostic listing is checked into broken.lint next to this
; file (regenerate with UPDATE_GOLDEN=1).
        .entry main
main:   li r20, 64
        ld r1, 0(r20)
        add r2, r1, r1        ; load-use in the load delay slot
        ld r3, 1(r20)
        bne r3, r0, squashy   ; branch sources resolve early: same hazard
        nop
        nop
squashy:
        beqsq r1, r2, chain
        st r2, 2(r20)         ; a store cannot be annulled
        addi r0, r1, 1        ; writes the hardwired zero register
chain:  movtos md, r1
        mstep r4, r5, r4
        mstep r4, r5, r4
        movtos md, r6         ; clobbers the partial product mid-chain
        mstep r4, r5, r4
        add r7, r8, r9
        nop                   ; pads no load: redundant (timing lint)
        add r10, r8, r9
        halt
