//! Property tests for [`mipsx_verify::BlockSummary`] (ISSUE satellite):
//!
//! 1. **Roundtrip invariance.** Block summaries are a pure function of the
//!    instruction image: re-materialising a program — through the text
//!    disassembler for textable instructions, or through decode → builder
//!    re-emission for full programs with branches — yields bit-identical
//!    summaries.
//! 2. **Merge associativity.** Splitting a straight-line region at
//!    non-branch boundaries and re-merging the pieces is associative, and
//!    (when no dataflow pair spans a split point) reproduces the unsplit
//!    analysis exactly.

use mipsx_asm::{assemble, disassemble, Asm, Program};
use mipsx_isa::{ComputeOp, Cond, Instr, Reg, SquashMode};
use mipsx_verify::{BlockSummary, TimingAnalysis, VerifyConfig};
use mipsx_workloads::random_scheduled_program;
use proptest::prelude::*;

fn summaries(p: &Program, slots: usize) -> Vec<BlockSummary> {
    TimingAnalysis::of(p, &VerifyConfig::for_slots(slots)).blocks
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

/// Instructions whose `Display` form the text assembler parses back
/// (branches display raw displacements, which the text syntax reads as
/// absolute targets — they go through the builder roundtrip instead).
fn arb_textable() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), arb_reg(), -65536i32..=65535).prop_map(|(rs1, rd, offset)| Instr::Ld {
            rs1,
            rd,
            offset
        }),
        (arb_reg(), arb_reg(), -65536i32..=65535).prop_map(|(rs1, rsrc, offset)| Instr::St {
            rs1,
            rsrc,
            offset
        }),
        (
            prop::sample::select(
                ComputeOp::ALL
                    .iter()
                    .copied()
                    .filter(|op| !op.uses_shamt())
                    .collect::<Vec<_>>()
            ),
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rs1, rs2, rd)| Instr::Compute {
                op,
                rs1,
                rs2,
                rd,
                shamt: 0
            }),
        (arb_reg(), arb_reg(), -65536i32..=65535).prop_map(|(rs1, rd, imm)| Instr::Addi {
            rs1,
            rd,
            imm
        }),
        Just(Instr::Nop),
    ]
}

/// An instruction drawing its registers only from the 8-register pool
/// starting at `base`. The merge test gives each segment a disjoint pool
/// so no dataflow pair (bypass, load pad, interlock) spans a segment
/// boundary — the one class of fact [`BlockSummary::merge`] documents it
/// cannot re-synthesize.
fn arb_pooled(base: u8) -> impl Strategy<Value = Instr> {
    let reg = move || (0u8..8).prop_map(move |i| Reg::new(base + i));
    prop_oneof![
        (reg(), reg(), -256i32..=255).prop_map(|(rs1, rd, imm)| Instr::Addi { rs1, rd, imm }),
        (reg(), reg(), -64i32..=63).prop_map(|(rs1, rd, offset)| Instr::Ld { rs1, rd, offset }),
        (
            prop::sample::select(
                ComputeOp::ALL
                    .iter()
                    .copied()
                    .filter(|op| !op.uses_shamt())
                    .collect::<Vec<_>>()
            ),
            reg(),
            reg(),
            reg()
        )
            .prop_map(|(op, rs1, rs2, rd)| Instr::Compute {
                op,
                rs1,
                rs2,
                rd,
                shamt: 0
            }),
        Just(Instr::Nop),
    ]
}

fn arb_segment(base: u8) -> impl Strategy<Value = Vec<Instr>> {
    prop::collection::vec(arb_pooled(base), 1..12)
}

/// Build the split program: a two-branch dispatcher reaching three
/// fall-through-chained segments, so the analyzer is forced to place a
/// leader at each segment start. Returns the program plus the three
/// segment start addresses.
fn dispatcher_program(
    segs: &[Vec<Instr>; 3],
    slots: usize,
) -> Result<(Program, [u32; 3]), mipsx_asm::AsmError> {
    let mut a = Asm::new(0);
    let m1 = a.new_label();
    let m2 = a.new_label();
    a.branch(Cond::Eq, SquashMode::NoSquash, Reg::new(25), Reg::ZERO, m1);
    a.nops(slots);
    a.branch(Cond::Eq, SquashMode::NoSquash, Reg::new(26), Reg::ZERO, m2);
    a.nops(slots);
    let s0 = a.here();
    for i in &segs[0] {
        a.emit(*i);
    }
    a.bind(m1)?;
    let s1 = a.here();
    for i in &segs[1] {
        a.emit(*i);
    }
    a.bind(m2)?;
    let s2 = a.here();
    for i in &segs[2] {
        a.emit(*i);
    }
    a.emit(Instr::Halt);
    Ok((a.finish()?, [s0, s1, s2]))
}

proptest! {
    /// assemble → disassemble → reassemble preserves every block summary
    /// (and, transitively, the image itself) for textable instruction
    /// sequences.
    #[test]
    fn summaries_survive_text_round_trip(
        body in prop::collection::vec(arb_textable(), 0..48),
        slots in 1usize..=2,
    ) {
        let mut src = String::new();
        for i in &body {
            src.push_str(&i.to_string());
            src.push('\n');
        }
        src.push_str("halt\n");
        let p1 = assemble(&src).unwrap_or_else(|e| panic!("assemble failed: {e}"));
        let lines = disassemble(p1.origin, &p1.words);
        let src2 = lines
            .iter()
            .map(|l| l.split_once(":  ").expect("disasm line format").1)
            .collect::<Vec<_>>()
            .join("\n");
        let p2 = assemble(&src2).unwrap_or_else(|e| panic!("reassemble failed: {e}"));
        prop_assert_eq!(&p1.words, &p2.words);
        prop_assert_eq!(summaries(&p1, slots), summaries(&p2, slots));
    }

    /// Decoding a full scheduled program (branches included) and
    /// re-emitting every instruction through the builder reproduces the
    /// image and its summaries.
    #[test]
    fn summaries_survive_builder_reemission(seed in any::<u64>(), slots in 1usize..=2) {
        let p1 = random_scheduled_program(seed);
        let mut a = Asm::new(p1.origin);
        for (i, &word) in p1.words.iter().enumerate() {
            let addr = p1.origin + i as u32;
            match p1.instr_at(addr) {
                Some(instr) => a.emit(instr),
                None => a.word(word),
            }
        }
        let p2 = a.finish().expect("no fixups pending");
        prop_assert_eq!(&p1.words, &p2.words);
        prop_assert_eq!(summaries(&p1, slots), summaries(&p2, slots));
    }

    /// Merging summaries split at non-branch boundaries is associative,
    /// and — with no dataflow pair spanning a split — reproduces the
    /// unsplit block's summary on every field that is not positional
    /// bookkeeping (`start`/`term_addr`).
    #[test]
    fn merge_is_associative_and_matches_unsplit_analysis(
        seg0 in arb_segment(1),
        seg1 in arb_segment(9),
        seg2 in arb_segment(17),
        slots in 1usize..=2,
    ) {
        let segs = [seg0, seg1, seg2];
        let (split, starts) = dispatcher_program(&segs, slots).expect("assembles");
        let ta = TimingAnalysis::of(&split, &VerifyConfig::for_slots(slots));
        prop_assert!(!ta.irregular, "dispatcher program should partition cleanly");
        let find = |start: u32| {
            ta.blocks
                .iter()
                .find(|b| b.start == start)
                .unwrap_or_else(|| panic!("no block at {start:#x}"))
        };
        let (a, b, c) = (find(starts[0]), find(starts[1]), find(starts[2]));

        // Non-adjacent blocks refuse to merge.
        prop_assert!(a.merge(c).is_none());

        let ab = a.merge(b).expect("a falls through into b");
        let bc = b.merge(c).expect("b falls through into c");
        let left = ab.merge(c).expect("(a+b) falls through into c");
        let right = a.merge(&bc).expect("a falls through into (b+c)");
        prop_assert_eq!(&left, &right);

        // The re-merged summary equals the unsplit analysis of the same
        // instruction sequence, modulo where it sits in the image.
        let mut direct = Asm::new(0);
        for seg in &segs {
            for i in seg {
                direct.emit(*i);
            }
        }
        direct.emit(Instr::Halt);
        let unsplit = direct.finish().expect("no labels");
        let blocks = summaries(&unsplit, slots);
        prop_assert_eq!(blocks.len(), 1, "straight-line program is one block");
        let expected = BlockSummary {
            start: blocks[0].start,
            term_addr: blocks[0].term_addr,
            ..left.clone()
        };
        prop_assert_eq!(&expected, &blocks[0]);
    }
}
