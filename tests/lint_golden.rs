//! Golden test for the lint listing.
//!
//! `tests/golden/broken.s` packs one violation of each major rule into a
//! short program; the expected diagnostic listing is frozen in
//! `tests/golden/broken.lint`. The listing is sorted and deterministic, so
//! any change to diagnostic text, ordering, or rule coverage shows up as a
//! diff here. Regenerate intentionally with `UPDATE_GOLDEN=1`.

use mipsx::asm::assemble;
use mipsx::verify::{verify, verify_with_timing, VerifyConfig};

#[test]
fn broken_program_lint_listing_matches_golden() {
    let source_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/broken.s");
    let source = std::fs::read_to_string(source_path).expect("read broken.s");
    let program = assemble(&source).expect("broken.s still assembles — it is broken, not invalid");

    let report = verify(&program, &VerifyConfig::default());
    // The program is broken on purpose; make sure it stays broken in the
    // ways the listing documents.
    assert!(!report.is_clean(), "broken.s unexpectedly lints clean");
    let got = format!("{report}\n");

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/broken.lint");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).expect("write golden");
    }
    let want = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to regenerate");
    assert_eq!(
        got, want,
        "lint listing changed; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The `--json` report (correctness + scheduling-quality diagnostics) is
/// byte-stable: diagnostics are sorted on `(addr, kind, detail)` and
/// deduplicated, and the serializer emits keys in a fixed order, so the
/// same program produces the same bytes on every run. The golden file
/// locks the exact bytes; any ordering or formatting drift fails here.
#[test]
fn broken_program_json_report_matches_golden_byte_for_byte() {
    let source_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/broken.s");
    let source = std::fs::read_to_string(source_path).expect("read broken.s");
    let program = assemble(&source).expect("broken.s still assembles — it is broken, not invalid");

    let report = verify_with_timing(&program, &VerifyConfig::default());
    assert!(!report.is_clean(), "broken.s unexpectedly lints clean");
    assert!(
        report.warning_count() > 0,
        "broken.s should trip at least one scheduling-quality warning"
    );
    let got = format!("{}\n", report.to_json());

    // Determinism: a second independent analysis of the same image must
    // produce identical bytes, not just equivalent content.
    let again = format!(
        "{}\n",
        verify_with_timing(&program, &VerifyConfig::default()).to_json()
    );
    assert_eq!(got, again, "JSON report is not run-to-run deterministic");

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/broken.lint.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).expect("write golden");
    }
    let want = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to regenerate");
    assert_eq!(
        got, want,
        "JSON lint report changed; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
