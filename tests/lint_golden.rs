//! Golden test for the lint listing.
//!
//! `tests/golden/broken.s` packs one violation of each major rule into a
//! short program; the expected diagnostic listing is frozen in
//! `tests/golden/broken.lint`. The listing is sorted and deterministic, so
//! any change to diagnostic text, ordering, or rule coverage shows up as a
//! diff here. Regenerate intentionally with `UPDATE_GOLDEN=1`.

use mipsx::asm::assemble;
use mipsx::verify::{verify, VerifyConfig};

#[test]
fn broken_program_lint_listing_matches_golden() {
    let source_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/broken.s");
    let source = std::fs::read_to_string(source_path).expect("read broken.s");
    let program = assemble(&source).expect("broken.s still assembles — it is broken, not invalid");

    let report = verify(&program, &VerifyConfig::default());
    // The program is broken on purpose; make sure it stays broken in the
    // ways the listing documents.
    assert!(!report.is_clean(), "broken.s unexpectedly lints clean");
    let got = format!("{report}\n");

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/broken.lint");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).expect("write golden");
    }
    let want = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to regenerate");
    assert_eq!(
        got, want,
        "lint listing changed; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}
