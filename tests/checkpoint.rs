//! End-to-end checkpoint/restore guarantees.
//!
//! The snapshot format's unit tests (crates/core) prove save → restore →
//! save is byte-stable on one machine. These tests prove the property the
//! robustness story actually needs: across **kernels × the six Table 1
//! branch schemes × fault plans on/off**, a machine snapshotted at an
//! arbitrary mid-run cycle and restored finishes with cycle-identical
//! statistics, a byte-identical trace, and a byte-identical final state —
//! and a restored machine is indistinguishable to the lockstep differ,
//! which compares every retirement against the reference model.

use mipsx_core::probe::JsonlSink;
use mipsx_core::{FaultPlan, Machine, MachineConfig, RunError};
use mipsx_ref::Lockstep;
use mipsx_reorg::{BranchScheme, Reorganizer};
use mipsx_workloads::find_kernel;

const BUDGET: u64 = 5_000_000;

/// Deterministic per-case "random" interruption point: FNV-1a over the
/// case label, folded into the run's interior. Different for every
/// (kernel, scheme, fault) combination, stable across runs.
fn interruption_cycle(label: &str, total_cycles: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    1 + h % (total_cycles - 1)
}

/// One matrix cell: full traced run, then interrupt, snapshot, restore,
/// and finish — asserting stats, trace bytes, and final snapshot bytes
/// all match the uninterrupted run.
fn save_restore_is_invisible(kernel: &str, scheme: BranchScheme, fault: Option<&str>) {
    let label = format!(
        "{kernel} slots={} {:?} {fault:?}",
        scheme.slots, scheme.squash
    );
    let raw = find_kernel(kernel).expect("known kernel").raw;
    let (program, _) = Reorganizer::new(scheme)
        .reorganize(&raw)
        .expect("schedulable");
    let cfg = MachineConfig {
        branch_delay_slots: scheme.slots,
        ..MachineConfig::default()
    };
    let plan = match fault {
        Some(spec) => FaultPlan::parse(spec).expect("valid fault spec"),
        None => FaultPlan::none(),
    };

    // The uninterrupted reference, traced.
    let mut machine = Machine::new(cfg);
    machine.load_program(&program);
    let mut sink = JsonlSink::new(Vec::new());
    let mut full_plan = plan.clone();
    let full_stats = machine
        .run_with_faults(BUDGET, &mut sink, &mut full_plan)
        .unwrap_or_else(|e| panic!("{label}: reference run failed: {e}"));
    let full_trace = String::from_utf8(sink.finish().unwrap()).unwrap();
    let full_final = machine.save_snapshot(Some(&full_plan)).unwrap();
    assert!(full_stats.cycles > 10, "{label}: too short to interrupt");

    // Interrupt at a case-specific cycle, snapshot with the plan cursor.
    let k = interruption_cycle(&label, full_stats.cycles);
    let mut machine = Machine::new(cfg);
    machine.load_program(&program);
    let mut head_sink = JsonlSink::new(Vec::new());
    let mut head_plan = plan.clone();
    match machine.run_with_faults(k, &mut head_sink, &mut head_plan) {
        Err(RunError::CycleLimit { .. }) => {}
        other => panic!("{label}: expected interruption at cycle {k}, got {other:?}"),
    }
    let snapshot = machine.save_snapshot(Some(&head_plan)).unwrap();
    drop((machine, head_plan)); // from here on, `snapshot` is all there is

    // Restore and finish: the tail must splice seamlessly onto the head.
    let (mut restored, tail_plan) = Machine::restore_snapshot(&snapshot).unwrap();
    let mut tail_plan = tail_plan.expect("plan rides in the snapshot");
    let mut tail_sink = JsonlSink::new(Vec::new());
    let tail_stats = restored
        .run_with_faults(BUDGET, &mut tail_sink, &mut tail_plan)
        .unwrap_or_else(|e| panic!("{label}: resumed run failed: {e}"));

    assert_eq!(
        tail_stats, full_stats,
        "{label}: stats diverge after restore"
    );
    let head = String::from_utf8(head_sink.finish().unwrap()).unwrap();
    let tail = String::from_utf8(tail_sink.finish().unwrap()).unwrap();
    assert_eq!(
        format!("{head}{tail}"),
        full_trace,
        "{label}: JSONL trace not byte-identical across restore at cycle {k}"
    );
    let resumed_final = restored.save_snapshot(Some(&tail_plan)).unwrap();
    assert_eq!(
        resumed_final, full_final,
        "{label}: final machine state not byte-identical"
    );
}

/// Timing-only fault plan (Icache parity retries + Ecache jitter): rich
/// interaction with the miss FSM, no dependence on an exception handler.
const FAULTS: &str = "23:parity,97:jitter2,151:parity,400:jitter5";

#[test]
fn restore_is_invisible_across_kernels_schemes_and_faults() {
    for kernel in ["sum_to_n", "fib_recursive", "memcpy"] {
        for scheme in BranchScheme::table1() {
            for fault in [None, Some(FAULTS)] {
                save_restore_is_invisible(kernel, scheme, fault);
            }
        }
    }
}

#[test]
fn lockstep_differ_accepts_a_restored_machine_mid_run() {
    let raw = find_kernel("fib_recursive").expect("known kernel").raw;
    let (program, _) = Reorganizer::new(BranchScheme::mipsx())
        .reorganize(&raw)
        .expect("schedulable");
    let mut ls = Lockstep::new(MachineConfig::default(), &program, FaultPlan::none());
    for _ in 0..800 {
        assert!(!ls.step().expect("no divergence before the swap"));
    }

    // Swap the pipeline out from under the differ for its own
    // save/restore image. If restore dropped or invented any in-flight
    // state, the very next retirement comparison would diverge.
    let bytes = ls.machine().save_snapshot(None).expect("snapshottable");
    *ls.machine_mut() = Machine::restore_snapshot(&bytes).expect("restorable").0;
    let stats = ls.run(BUDGET).expect("restored machine stays in lockstep");
    assert!(stats.instructions > 0);
}
