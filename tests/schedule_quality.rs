//! The reorganizer's own output must satisfy its scheduling-quality lints
//! (ISSUE satellite): for every kernel × all six Table 1 branch schemes,
//! the lowered program carries **zero** `missed-slot-fill` and zero
//! `redundant-nop` findings — the reorganizer never leaves waste on the
//! table that its own lint pass can see. No waivers: trailing-pad cleanup
//! (Pass 2.5) closed the one real gap this test originally found.

use mipsx_reorg::{BranchScheme, Reorganizer};
use mipsx_verify::{quality, DiagKind, VerifyConfig};
use mipsx_workloads::all_kernels;

#[test]
fn reorganizer_output_passes_its_own_quality_lints() {
    for kernel in all_kernels() {
        for scheme in BranchScheme::table1() {
            let label = format!("{} / {scheme}", kernel.name);
            let (program, report) = Reorganizer::new(scheme)
                .reorganize(&kernel.raw)
                .unwrap_or_else(|e| panic!("{label}: reorganize failed: {e}"));

            let lint = quality(&program, &VerifyConfig::for_slots(scheme.slots));
            let offenders: Vec<String> = lint
                .diagnostics
                .iter()
                .filter(|d| matches!(d.kind, DiagKind::MissedSlotFill | DiagKind::RedundantNop))
                .map(|d| format!("{:#07x}: {} — {}", d.addr, d.kind.name(), d.detail))
                .collect();
            assert!(
                offenders.is_empty(),
                "{label}: schedule waste the reorganizer should have removed:\n  {}",
                offenders.join("\n  ")
            );
            assert_eq!(
                report.quality_findings,
                lint.diagnostics.len(),
                "{label}: ScheduleReport.quality_findings disagrees with a fresh lint"
            );
        }
    }
}

/// The two lints the reorganizer is held to are the waste lints; the
/// deeper ones (avoidable-load-stall, cross-block-hazard-at-join) are
/// advisory and may legitimately fire on dense schedules. Record the
/// current state: kernels are fully clean.
#[test]
fn kernel_schedules_are_fully_lint_clean() {
    for kernel in all_kernels() {
        for scheme in BranchScheme::table1() {
            let (_, report) = Reorganizer::new(scheme)
                .reorganize(&kernel.raw)
                .expect("schedulable");
            assert_eq!(
                report.quality_findings, 0,
                "{} / {scheme}: expected a fully lint-clean schedule",
                kernel.name
            );
        }
    }
}
