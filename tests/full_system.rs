//! Workspace-level integration: every layer in one test file — assembler →
//! reorganizer → pipeline → caches → coprocessors → experiments.

use mipsx::asm::{assemble, assemble_at, disassemble};
use mipsx::coproc::{Fpu, FpuOp};
use mipsx::core::{InterlockPolicy, Machine, MachineConfig};
use mipsx::isa::{Instr, Reg};
use mipsx::reorg::{BranchScheme, Reorganizer};
use mipsx::workloads::kernels;

#[test]
fn assemble_run_disassemble_round_trip() {
    let program = assemble("li r1, 42\nadd r2, r1, r1\nhalt").unwrap();
    let text = disassemble(program.origin, &program.words);
    assert!(text[0].contains("addi r1, r0, 42"));
    let mut m = Machine::new(MachineConfig::mipsx());
    m.load_program(&program);
    m.run(10_000).unwrap();
    assert_eq!(m.cpu().reg(Reg::new(2)), 84);
}

#[test]
fn kernel_through_reorganizer_on_real_memory_system() {
    let kernel = kernels::sieve(60);
    let reorg = Reorganizer::new(BranchScheme::mipsx());
    let (image, report) = reorg.reorganize(&kernel.raw).unwrap();
    assert!(report.fill_ratio() > 0.0);
    let mut m = Machine::new(MachineConfig {
        interlock: InterlockPolicy::Detect,
        ..MachineConfig::mipsx()
    });
    m.load_program(&image);
    let stats = m.run(10_000_000).unwrap();
    assert_eq!(m.cpu().reg(Reg::new(2)), 17); // primes below 60
    assert!(stats.cpi() > 1.0);
    assert!(m.icache().stats().accesses > 0);
}

#[test]
fn fpu_saxpy_through_the_address_line_interface() {
    let mul = FpuOp::Mul { rd: 1, rs: 2 }.encode();
    let src = format!(
        "li r1, 200\nldf f1, 0(r1)\nldf f2, 1(r1)\ncpop c1, {mul}(r0)\nstf f1, 2(r1)\nhalt"
    );
    let program = assemble(&src).unwrap();
    let mut m = Machine::new(MachineConfig::mipsx());
    m.attach_coprocessor(1, Box::new(Fpu::new()));
    m.write_word(200, 1.5f32.to_bits());
    m.write_word(201, 4.0f32.to_bits());
    m.load_program(&program);
    m.run(100_000).unwrap();
    assert_eq!(f32::from_bits(m.read_word(202)), 6.0);
    let fpu = m
        .coprocessor(1)
        .and_then(|c| c.as_any().downcast_ref::<Fpu>())
        .unwrap();
    assert_eq!(fpu.ops_executed(), 1);
}

#[test]
fn exception_machinery_end_to_end() {
    let handler = assemble(
        "movfrs r27, pswold\nli r28, -5\nand r27, r27, r28\nmovtos pswold, r27\njpc\njpc\njpcrs",
    )
    .unwrap();
    let user = assemble_at(
        "li r1, 65535\nsll r1, r1, 15\nadd r2, r1, r1\nli r3, 7\nhalt",
        0x400,
    )
    .unwrap();
    let mut m = Machine::new(MachineConfig::mipsx());
    m.load_at(0, &handler.words);
    m.load_program(&user);
    m.cpu_mut().psw.set_overflow_trap_enabled(true);
    let stats = m.run(100_000).unwrap();
    assert_eq!(stats.exceptions, 1);
    assert_eq!(m.cpu().reg(Reg::new(3)), 7);
}

#[test]
fn facade_reexports_compose() {
    // The facade's types interoperate: an Instr built through mipsx::isa
    // decodes from a word written through mipsx::core's machine.
    let i = Instr::Addi {
        rs1: Reg::ZERO,
        rd: Reg::new(9),
        imm: -1,
    };
    let mut m = Machine::new(MachineConfig::mipsx());
    m.write_word(50, i.encode());
    assert_eq!(Instr::decode(m.read_word(50)), i);
}

#[test]
fn experiment_harness_is_callable_from_the_facade() {
    let quick = mipsx::bench::experiments::e4_quick_compare::run();
    assert!(quick.synth.total > 0);
    let fsm = mipsx::bench::experiments::e6_fsms::run();
    assert!(fsm.cycles > 0);
}
