//! Headline correctness for the static timing analyzer: for fault-free
//! execution of **every kernel × all six Table 1 branch schemes** on the
//! cache-ideal configuration, the per-block dynamic stall attributor must
//! match the static prediction **exactly** — drains, squashes, nop
//! retires, branch outcomes, stall buckets, and total cycles, per block
//! and globally. Any drift in either the analyzer or the pipeline model
//! fails this test.

use mipsx_core::probe::NullSink;
use mipsx_core::{Machine, MachineConfig};
use mipsx_reorg::{BranchScheme, Reorganizer};
use mipsx_verify::{differential, BlockAttribution, TimingAnalysis, VerifyConfig};
use mipsx_workloads::all_kernels;

const BUDGET: u64 = 5_000_000;

fn check_kernel_scheme(kernel: &str, raw: &mipsx_reorg::RawProgram, scheme: BranchScheme) {
    let label = format!("{kernel} / {scheme}");
    let (program, _) = Reorganizer::new(scheme)
        .reorganize(raw)
        .unwrap_or_else(|e| panic!("{label}: reorganize failed: {e}"));

    let vcfg = VerifyConfig::for_slots(scheme.slots);
    let ta = TimingAnalysis::of(&program, &vcfg);
    assert!(
        !ta.irregular,
        "{label}: kernel produced an irregular CFG — exact model unavailable"
    );
    assert!(
        ta.blocks.iter().all(|b| !b.irregular),
        "{label}: irregular block in kernel output"
    );

    let cfg = MachineConfig {
        branch_delay_slots: scheme.slots,
        ..MachineConfig::cache_ideal()
    };
    let mut machine = Machine::new(cfg);
    machine.load_program(&program);
    let mut attrib = BlockAttribution::new(&ta);
    let stats = machine
        .run_with(BUDGET, &mut attrib)
        .unwrap_or_else(|e| panic!("{label}: run failed: {e}"));

    let errs = differential(&ta, &attrib, &stats);
    assert!(
        errs.is_empty(),
        "{label}: static/dynamic mismatch:\n  {}",
        errs.join("\n  ")
    );

    // The per-block cost model is a true per-visit lower bound: plugging
    // the *measured* visit counts into the static formula (best-case
    // outcomes) can never exceed the measured cycles-per-useful
    // instruction, because actual wasted slots >= best-case wasted slots
    // on every visit. (The headline `static_cpi_bound()` uses loop-nest
    // weights instead of visit counts, so it is an estimate, not an
    // inequality — see DESIGN.md.)
    let costs = ta.cost_table();
    let (mut cyc, mut useful) = (0u64, 0u64);
    for (c, d) in costs.iter().zip(&attrib.blocks) {
        let b = &ta.blocks[c.index];
        cyc += d.visits * u64::from(b.len);
        useful += d.visits * u64::from(b.len - c.best_wasted);
    }
    let visit_bound = cyc as f64 / useful.max(1) as f64;
    let measured_useful = stats.cycles as f64 / (stats.instructions - stats.nops).max(1) as f64;
    assert!(
        visit_bound <= measured_useful + 1e-9,
        "{label}: visit-weighted bound {visit_bound:.4} exceeds measured useful CPI \
         {measured_useful:.4}"
    );
    assert!(
        ta.static_cpi_bound() >= 1.0,
        "{label}: static CPI bound below 1.0"
    );
}

#[test]
fn static_model_matches_dynamic_exactly_for_all_kernels_and_schemes() {
    for kernel in all_kernels() {
        for scheme in BranchScheme::table1() {
            check_kernel_scheme(kernel.name, &kernel.raw, scheme);
        }
    }
}

/// The cache-ideal config really is stall-free: a plain default-config run
/// of the same program shows frozen cycles, proving the differential's
/// zero-stall claim is a property of the config, not of the workload.
#[test]
fn default_config_is_not_cache_ideal() {
    let kernel = all_kernels().first().expect("kernels exist").clone();
    let (program, _) = Reorganizer::new(BranchScheme::mipsx())
        .reorganize(&kernel.raw)
        .expect("schedulable");
    let mut machine = Machine::new(MachineConfig::default());
    machine.load_program(&program);
    let stats = machine.run_with(BUDGET, &mut NullSink).expect("runs");
    assert!(
        stats.frozen_cycles > 0,
        "default config should take cache misses on {}",
        kernel.name
    );
}
