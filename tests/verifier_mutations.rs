//! Mutation tests for the static hazard verifier.
//!
//! Each test starts from a program the verifier accepts, applies one
//! word-level mutation of the kind a buggy reorganizer (or bit flip in a
//! binary) would produce, and asserts the verifier reports **exactly** the
//! expected diagnostic kind at the expected address. The clean baseline is
//! checked first in every test so a regression that makes the verifier
//! reject legal code fails here too.

use mipsx::asm::{assemble, Program};
use mipsx::isa::{Instr, Reg, SpecialReg, SquashMode};
use mipsx::verify::{verify, DiagKind, Severity, VerifyConfig};

fn lint(program: &Program) -> mipsx::verify::LintReport {
    verify(program, &VerifyConfig::default())
}

fn assert_clean(program: &Program) {
    let report = lint(program);
    assert!(
        report.is_clean(),
        "baseline program must verify clean before mutation:\n{report}"
    );
}

/// Assert the report contains exactly one error, of `kind`, at `addr`.
fn assert_single_error(program: &Program, kind: DiagKind, addr: u32) {
    let report = lint(program);
    let errors: Vec<_> = report.errors().collect();
    assert_eq!(
        errors.len(),
        1,
        "expected exactly one error after mutation, got:\n{report}"
    );
    assert_eq!(errors[0].kind, kind, "wrong diagnostic kind:\n{report}");
    assert_eq!(errors[0].addr, addr, "wrong diagnostic address:\n{report}");
    assert_eq!(errors[0].kind.severity(), Severity::Error);
}

/// Deleting the nop that pads a load delay slot pulls the consumer into
/// the slot: `load-delay` at the consumer's (shifted) address.
#[test]
fn deleting_a_delay_slot_nop_is_caught() {
    let program = assemble(
        "li r20, 64\n\
         ld r1, 0(r20)\n\
         nop\n\
         add r2, r1, r1\n\
         halt",
    )
    .expect("assembles");
    assert_clean(&program);

    let mut mutated = program.clone();
    mutated.words.remove(2); // drop the nop after the load
    assert_single_error(&mutated, DiagKind::LoadDelay, 2);
}

/// Swapping two instructions so a consumer lands right behind its load:
/// the classic scheduling bug the reorganizer's pass 1 exists to prevent.
#[test]
fn swapping_instructions_into_a_load_shadow_is_caught() {
    let program = assemble(
        "li r20, 64\n\
         add r4, r5, r5\n\
         ld r1, 0(r20)\n\
         nop\n\
         add r2, r1, r1\n\
         halt",
    )
    .expect("assembles");
    assert_clean(&program);

    let mut mutated = program.clone();
    // Swap the independent add with the padding nop: `add r2, r1, r1` now
    // issues one cycle after the load.
    mutated.words.swap(3, 4);
    assert_single_error(&mutated, DiagKind::LoadDelay, 3);
}

/// Flipping the squash bit on a branch whose slots hold a store: the store
/// was legal in a no-squash slot, but cannot be annulled.
#[test]
fn flipping_the_squash_bit_over_a_store_is_caught() {
    let program = assemble(
        "li r20, 64\n\
         beq r1, r2, target\n\
         st r3, 0(r20)\n\
         nop\n\
         target: halt",
    )
    .expect("assembles");
    assert_clean(&program);

    let mut mutated = program.clone();
    let branch_addr = 1usize;
    let decoded = Instr::decode(mutated.words[branch_addr]);
    let Instr::Branch {
        cond,
        rs1,
        rs2,
        disp,
        ..
    } = decoded
    else {
        panic!("expected a branch at word {branch_addr}, got {decoded}");
    };
    mutated.words[branch_addr] = Instr::Branch {
        cond,
        rs1,
        rs2,
        disp,
        squash: SquashMode::SquashIfNotTaken,
    }
    .encode();
    // The store at addr 2 now sits in an annulled slot.
    assert_single_error(&mutated, DiagKind::SquashUnsafe, 2);
}

/// A squashing branch authored directly over a store slot is flagged at
/// the slot address (same rule, exercised through the assembler syntax).
#[test]
fn authored_squashing_store_slot_is_caught() {
    let program = assemble(
        "li r20, 64\n\
         beqsq r1, r2, target\n\
         st r3, 0(r20)\n\
         nop\n\
         target: halt",
    )
    .expect("assembles");
    assert_single_error(&program, DiagKind::SquashUnsafe, 2);
}

/// Overwriting one step of a 32-step multiply with an MD write: the
/// partial product is clobbered mid-chain.
#[test]
fn clobbering_an_md_chain_is_caught() {
    let mut text = String::from(
        "li r7, 21\n\
         movtos md, r8\n\
         li r9, 0\n",
    );
    for _ in 0..32 {
        text.push_str("mstep r9, r7, r9\n");
    }
    text.push_str("halt");
    let program = assemble(&text).expect("assembles");
    assert_clean(&program);

    let mut mutated = program.clone();
    // Words: 0 li, 1 movtos, 2 li, 3..35 msteps. Clobber step 10 of 32.
    let victim = 3 + 10;
    mutated.words[victim] = Instr::Movtos {
        sreg: SpecialReg::Md,
        rs: Reg::new(8),
    }
    .encode();
    assert_single_error(&mutated, DiagKind::MdChainBroken, victim as u32);
}
