/root/repo/target/debug/examples/coprocessor_fpu-559792ee22d12de2.d: examples/coprocessor_fpu.rs Cargo.toml

/root/repo/target/debug/examples/libcoprocessor_fpu-559792ee22d12de2.rmeta: examples/coprocessor_fpu.rs Cargo.toml

examples/coprocessor_fpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
