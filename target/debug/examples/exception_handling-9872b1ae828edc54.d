/root/repo/target/debug/examples/exception_handling-9872b1ae828edc54.d: examples/exception_handling.rs

/root/repo/target/debug/examples/exception_handling-9872b1ae828edc54: examples/exception_handling.rs

examples/exception_handling.rs:
