/root/repo/target/debug/examples/quickstart-a59a2a5fe95cb9c1.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-a59a2a5fe95cb9c1.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
