/root/repo/target/debug/examples/coprocessor_fpu-a6634d7a72a010d9.d: examples/coprocessor_fpu.rs

/root/repo/target/debug/examples/coprocessor_fpu-a6634d7a72a010d9: examples/coprocessor_fpu.rs

examples/coprocessor_fpu.rs:
