/root/repo/target/debug/examples/pascal_workload-0b7aa33811a05e38.d: examples/pascal_workload.rs

/root/repo/target/debug/examples/pascal_workload-0b7aa33811a05e38: examples/pascal_workload.rs

examples/pascal_workload.rs:
