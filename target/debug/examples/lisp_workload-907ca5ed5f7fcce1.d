/root/repo/target/debug/examples/lisp_workload-907ca5ed5f7fcce1.d: examples/lisp_workload.rs Cargo.toml

/root/repo/target/debug/examples/liblisp_workload-907ca5ed5f7fcce1.rmeta: examples/lisp_workload.rs Cargo.toml

examples/lisp_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
