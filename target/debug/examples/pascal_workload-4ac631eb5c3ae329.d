/root/repo/target/debug/examples/pascal_workload-4ac631eb5c3ae329.d: examples/pascal_workload.rs Cargo.toml

/root/repo/target/debug/examples/libpascal_workload-4ac631eb5c3ae329.rmeta: examples/pascal_workload.rs Cargo.toml

examples/pascal_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
