/root/repo/target/debug/examples/quickstart-8ef3313cac7286b1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-8ef3313cac7286b1: examples/quickstart.rs

examples/quickstart.rs:
