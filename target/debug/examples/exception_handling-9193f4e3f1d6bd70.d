/root/repo/target/debug/examples/exception_handling-9193f4e3f1d6bd70.d: examples/exception_handling.rs Cargo.toml

/root/repo/target/debug/examples/libexception_handling-9193f4e3f1d6bd70.rmeta: examples/exception_handling.rs Cargo.toml

examples/exception_handling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
