/root/repo/target/debug/examples/lisp_workload-672cc19d3a493fab.d: examples/lisp_workload.rs

/root/repo/target/debug/examples/lisp_workload-672cc19d3a493fab: examples/lisp_workload.rs

examples/lisp_workload.rs:
