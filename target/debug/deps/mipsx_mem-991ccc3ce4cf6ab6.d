/root/repo/target/debug/deps/mipsx_mem-991ccc3ce4cf6ab6.d: crates/mem/src/lib.rs crates/mem/src/ecache.rs crates/mem/src/icache.rs crates/mem/src/main_memory.rs crates/mem/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx_mem-991ccc3ce4cf6ab6.rmeta: crates/mem/src/lib.rs crates/mem/src/ecache.rs crates/mem/src/icache.rs crates/mem/src/main_memory.rs crates/mem/src/stats.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/ecache.rs:
crates/mem/src/icache.rs:
crates/mem/src/main_memory.rs:
crates/mem/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
