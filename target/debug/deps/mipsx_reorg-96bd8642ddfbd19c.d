/root/repo/target/debug/deps/mipsx_reorg-96bd8642ddfbd19c.d: crates/reorg/src/lib.rs crates/reorg/src/btb.rs crates/reorg/src/liveness.rs crates/reorg/src/quick_compare.rs crates/reorg/src/raw.rs crates/reorg/src/schedule.rs crates/reorg/src/scheme.rs

/root/repo/target/debug/deps/libmipsx_reorg-96bd8642ddfbd19c.rlib: crates/reorg/src/lib.rs crates/reorg/src/btb.rs crates/reorg/src/liveness.rs crates/reorg/src/quick_compare.rs crates/reorg/src/raw.rs crates/reorg/src/schedule.rs crates/reorg/src/scheme.rs

/root/repo/target/debug/deps/libmipsx_reorg-96bd8642ddfbd19c.rmeta: crates/reorg/src/lib.rs crates/reorg/src/btb.rs crates/reorg/src/liveness.rs crates/reorg/src/quick_compare.rs crates/reorg/src/raw.rs crates/reorg/src/schedule.rs crates/reorg/src/scheme.rs

crates/reorg/src/lib.rs:
crates/reorg/src/btb.rs:
crates/reorg/src/liveness.rs:
crates/reorg/src/quick_compare.rs:
crates/reorg/src/raw.rs:
crates/reorg/src/schedule.rs:
crates/reorg/src/scheme.rs:
