/root/repo/target/debug/deps/reproduce-c5071f8374d1a8e4.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-c5071f8374d1a8e4: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
