/root/repo/target/debug/deps/mipsx_reorg-b23bc0e2822116ed.d: crates/reorg/src/lib.rs crates/reorg/src/btb.rs crates/reorg/src/liveness.rs crates/reorg/src/quick_compare.rs crates/reorg/src/raw.rs crates/reorg/src/schedule.rs crates/reorg/src/scheme.rs

/root/repo/target/debug/deps/mipsx_reorg-b23bc0e2822116ed: crates/reorg/src/lib.rs crates/reorg/src/btb.rs crates/reorg/src/liveness.rs crates/reorg/src/quick_compare.rs crates/reorg/src/raw.rs crates/reorg/src/schedule.rs crates/reorg/src/scheme.rs

crates/reorg/src/lib.rs:
crates/reorg/src/btb.rs:
crates/reorg/src/liveness.rs:
crates/reorg/src/quick_compare.rs:
crates/reorg/src/raw.rs:
crates/reorg/src/schedule.rs:
crates/reorg/src/scheme.rs:
