/root/repo/target/debug/deps/coprocessors-654b6452fcaa33fe.d: crates/core/tests/coprocessors.rs Cargo.toml

/root/repo/target/debug/deps/libcoprocessors-654b6452fcaa33fe.rmeta: crates/core/tests/coprocessors.rs Cargo.toml

crates/core/tests/coprocessors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
