/root/repo/target/debug/deps/mipsx_bench-d71fbfd7c17ddd3e.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e10_btb.rs crates/bench/src/experiments/e11_ecache.rs crates/bench/src/experiments/e12_subblock.rs crates/bench/src/experiments/e1_branch_schemes.rs crates/bench/src/experiments/e2_icache_fetch.rs crates/bench/src/experiments/e3_icache_orgs.rs crates/bench/src/experiments/e4_quick_compare.rs crates/bench/src/experiments/e5_reorganizer.rs crates/bench/src/experiments/e6_fsms.rs crates/bench/src/experiments/e7_cpi.rs crates/bench/src/experiments/e8_coproc.rs crates/bench/src/experiments/e9_vax.rs crates/bench/src/fp_workload.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx_bench-d71fbfd7c17ddd3e.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e10_btb.rs crates/bench/src/experiments/e11_ecache.rs crates/bench/src/experiments/e12_subblock.rs crates/bench/src/experiments/e1_branch_schemes.rs crates/bench/src/experiments/e2_icache_fetch.rs crates/bench/src/experiments/e3_icache_orgs.rs crates/bench/src/experiments/e4_quick_compare.rs crates/bench/src/experiments/e5_reorganizer.rs crates/bench/src/experiments/e6_fsms.rs crates/bench/src/experiments/e7_cpi.rs crates/bench/src/experiments/e8_coproc.rs crates/bench/src/experiments/e9_vax.rs crates/bench/src/fp_workload.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/e10_btb.rs:
crates/bench/src/experiments/e11_ecache.rs:
crates/bench/src/experiments/e12_subblock.rs:
crates/bench/src/experiments/e1_branch_schemes.rs:
crates/bench/src/experiments/e2_icache_fetch.rs:
crates/bench/src/experiments/e3_icache_orgs.rs:
crates/bench/src/experiments/e4_quick_compare.rs:
crates/bench/src/experiments/e5_reorganizer.rs:
crates/bench/src/experiments/e6_fsms.rs:
crates/bench/src/experiments/e7_cpi.rs:
crates/bench/src/experiments/e8_coproc.rs:
crates/bench/src/experiments/e9_vax.rs:
crates/bench/src/fp_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
