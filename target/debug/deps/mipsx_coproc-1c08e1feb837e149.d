/root/repo/target/debug/deps/mipsx_coproc-1c08e1feb837e149.d: crates/coproc/src/lib.rs crates/coproc/src/fpu.rs crates/coproc/src/intc.rs crates/coproc/src/scheme.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx_coproc-1c08e1feb837e149.rmeta: crates/coproc/src/lib.rs crates/coproc/src/fpu.rs crates/coproc/src/intc.rs crates/coproc/src/scheme.rs Cargo.toml

crates/coproc/src/lib.rs:
crates/coproc/src/fpu.rs:
crates/coproc/src/intc.rs:
crates/coproc/src/scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
