/root/repo/target/debug/deps/reproduce-bc75edb65f06d942.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-bc75edb65f06d942: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
