/root/repo/target/debug/deps/prop_roundtrip-148d7d4419d6771a.d: crates/asm/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-148d7d4419d6771a: crates/asm/tests/prop_roundtrip.rs

crates/asm/tests/prop_roundtrip.rs:
