/root/repo/target/debug/deps/mipsx-4aa91bcc76323ae7.d: src/bin/mipsx.rs

/root/repo/target/debug/deps/mipsx-4aa91bcc76323ae7: src/bin/mipsx.rs

src/bin/mipsx.rs:
