/root/repo/target/debug/deps/mipsx_isa-8f0da84d9ad41726.d: crates/isa/src/lib.rs crates/isa/src/cond.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/psw.rs crates/isa/src/reg.rs crates/isa/src/sreg.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx_isa-8f0da84d9ad41726.rmeta: crates/isa/src/lib.rs crates/isa/src/cond.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/psw.rs crates/isa/src/reg.rs crates/isa/src/sreg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/cond.rs:
crates/isa/src/exception.rs:
crates/isa/src/instr.rs:
crates/isa/src/psw.rs:
crates/isa/src/reg.rs:
crates/isa/src/sreg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
