/root/repo/target/debug/deps/equivalence-9710bc6b70c87cb4.d: crates/reorg/tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-9710bc6b70c87cb4: crates/reorg/tests/equivalence.rs

crates/reorg/tests/equivalence.rs:
