/root/repo/target/debug/deps/disasm_complete-18a29b2e863d0039.d: crates/workloads/tests/disasm_complete.rs Cargo.toml

/root/repo/target/debug/deps/libdisasm_complete-18a29b2e863d0039.rmeta: crates/workloads/tests/disasm_complete.rs Cargo.toml

crates/workloads/tests/disasm_complete.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
