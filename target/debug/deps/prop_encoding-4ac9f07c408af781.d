/root/repo/target/debug/deps/prop_encoding-4ac9f07c408af781.d: crates/isa/tests/prop_encoding.rs Cargo.toml

/root/repo/target/debug/deps/libprop_encoding-4ac9f07c408af781.rmeta: crates/isa/tests/prop_encoding.rs Cargo.toml

crates/isa/tests/prop_encoding.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
