/root/repo/target/debug/deps/prop_roundtrip-2606691428a6e895.d: crates/asm/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-2606691428a6e895.rmeta: crates/asm/tests/prop_roundtrip.rs Cargo.toml

crates/asm/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
