/root/repo/target/debug/deps/exceptions-02f5f055385ae724.d: crates/core/tests/exceptions.rs Cargo.toml

/root/repo/target/debug/deps/libexceptions-02f5f055385ae724.rmeta: crates/core/tests/exceptions.rs Cargo.toml

crates/core/tests/exceptions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
