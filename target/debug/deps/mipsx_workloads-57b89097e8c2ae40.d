/root/repo/target/debug/deps/mipsx_workloads-57b89097e8c2ae40.d: crates/workloads/src/lib.rs crates/workloads/src/calibration.rs crates/workloads/src/kernels.rs crates/workloads/src/synth.rs crates/workloads/src/traces.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx_workloads-57b89097e8c2ae40.rmeta: crates/workloads/src/lib.rs crates/workloads/src/calibration.rs crates/workloads/src/kernels.rs crates/workloads/src/synth.rs crates/workloads/src/traces.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/calibration.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/synth.rs:
crates/workloads/src/traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
