/root/repo/target/debug/deps/iss_differential-ebf603892aecde79.d: crates/core/tests/iss_differential.rs

/root/repo/target/debug/deps/iss_differential-ebf603892aecde79: crates/core/tests/iss_differential.rs

crates/core/tests/iss_differential.rs:
