/root/repo/target/debug/deps/prop_icache-cba39c370e9354da.d: crates/mem/tests/prop_icache.rs Cargo.toml

/root/repo/target/debug/deps/libprop_icache-cba39c370e9354da.rmeta: crates/mem/tests/prop_icache.rs Cargo.toml

crates/mem/tests/prop_icache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
