/root/repo/target/debug/deps/mipsx_core-9bb5feadce6432d8.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/error.rs crates/core/src/fsm.rs crates/core/src/machine.rs crates/core/src/probe.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libmipsx_core-9bb5feadce6432d8.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/error.rs crates/core/src/fsm.rs crates/core/src/machine.rs crates/core/src/probe.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/libmipsx_core-9bb5feadce6432d8.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/error.rs crates/core/src/fsm.rs crates/core/src/machine.rs crates/core/src/probe.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/cpu.rs:
crates/core/src/error.rs:
crates/core/src/fsm.rs:
crates/core/src/machine.rs:
crates/core/src/probe.rs:
crates/core/src/stats.rs:
