/root/repo/target/debug/deps/mipsx-9d59d84a85279cb2.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx-9d59d84a85279cb2.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
