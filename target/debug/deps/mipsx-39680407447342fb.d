/root/repo/target/debug/deps/mipsx-39680407447342fb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx-39680407447342fb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
