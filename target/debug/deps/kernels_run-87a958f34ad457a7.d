/root/repo/target/debug/deps/kernels_run-87a958f34ad457a7.d: crates/workloads/tests/kernels_run.rs

/root/repo/target/debug/deps/kernels_run-87a958f34ad457a7: crates/workloads/tests/kernels_run.rs

crates/workloads/tests/kernels_run.rs:
