/root/repo/target/debug/deps/mipsx_core-2d13a763c05610f8.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/error.rs crates/core/src/fsm.rs crates/core/src/machine.rs crates/core/src/probe.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/mipsx_core-2d13a763c05610f8: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/error.rs crates/core/src/fsm.rs crates/core/src/machine.rs crates/core/src/probe.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/cpu.rs:
crates/core/src/error.rs:
crates/core/src/fsm.rs:
crates/core/src/machine.rs:
crates/core/src/probe.rs:
crates/core/src/stats.rs:
