/root/repo/target/debug/deps/mipsx-0cbe22b477f38ae5.d: src/bin/mipsx.rs

/root/repo/target/debug/deps/mipsx-0cbe22b477f38ae5: src/bin/mipsx.rs

src/bin/mipsx.rs:
