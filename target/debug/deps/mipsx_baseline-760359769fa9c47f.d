/root/repo/target/debug/deps/mipsx_baseline-760359769fa9c47f.d: crates/baseline/src/lib.rs crates/baseline/src/compare.rs crates/baseline/src/ir.rs crates/baseline/src/mipsx_gen.rs crates/baseline/src/programs.rs crates/baseline/src/vax.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx_baseline-760359769fa9c47f.rmeta: crates/baseline/src/lib.rs crates/baseline/src/compare.rs crates/baseline/src/ir.rs crates/baseline/src/mipsx_gen.rs crates/baseline/src/programs.rs crates/baseline/src/vax.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/compare.rs:
crates/baseline/src/ir.rs:
crates/baseline/src/mipsx_gen.rs:
crates/baseline/src/programs.rs:
crates/baseline/src/vax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
