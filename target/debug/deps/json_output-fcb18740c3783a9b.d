/root/repo/target/debug/deps/json_output-fcb18740c3783a9b.d: crates/bench/tests/json_output.rs

/root/repo/target/debug/deps/json_output-fcb18740c3783a9b: crates/bench/tests/json_output.rs

crates/bench/tests/json_output.rs:

# env-dep:CARGO_BIN_EXE_reproduce=/root/repo/target/debug/reproduce
