/root/repo/target/debug/deps/mipsx_reorg-e0c75694b33bfa5c.d: crates/reorg/src/lib.rs crates/reorg/src/btb.rs crates/reorg/src/liveness.rs crates/reorg/src/quick_compare.rs crates/reorg/src/raw.rs crates/reorg/src/schedule.rs crates/reorg/src/scheme.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx_reorg-e0c75694b33bfa5c.rmeta: crates/reorg/src/lib.rs crates/reorg/src/btb.rs crates/reorg/src/liveness.rs crates/reorg/src/quick_compare.rs crates/reorg/src/raw.rs crates/reorg/src/schedule.rs crates/reorg/src/scheme.rs Cargo.toml

crates/reorg/src/lib.rs:
crates/reorg/src/btb.rs:
crates/reorg/src/liveness.rs:
crates/reorg/src/quick_compare.rs:
crates/reorg/src/raw.rs:
crates/reorg/src/schedule.rs:
crates/reorg/src/scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
