/root/repo/target/debug/deps/rand-5c16a2702e19dfc7.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/rand-5c16a2702e19dfc7: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
