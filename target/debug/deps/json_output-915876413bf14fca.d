/root/repo/target/debug/deps/json_output-915876413bf14fca.d: crates/bench/tests/json_output.rs Cargo.toml

/root/repo/target/debug/deps/libjson_output-915876413bf14fca.rmeta: crates/bench/tests/json_output.rs Cargo.toml

crates/bench/tests/json_output.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_reproduce=placeholder:reproduce
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
