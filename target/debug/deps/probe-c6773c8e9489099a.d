/root/repo/target/debug/deps/probe-c6773c8e9489099a.d: crates/core/tests/probe.rs

/root/repo/target/debug/deps/probe-c6773c8e9489099a: crates/core/tests/probe.rs

crates/core/tests/probe.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
