/root/repo/target/debug/deps/icache_fetch-29a9153a59ba0c9d.d: crates/bench/benches/icache_fetch.rs Cargo.toml

/root/repo/target/debug/deps/libicache_fetch-29a9153a59ba0c9d.rmeta: crates/bench/benches/icache_fetch.rs Cargo.toml

crates/bench/benches/icache_fetch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
