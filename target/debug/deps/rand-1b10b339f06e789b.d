/root/repo/target/debug/deps/rand-1b10b339f06e789b.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1b10b339f06e789b.rlib: crates/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1b10b339f06e789b.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
