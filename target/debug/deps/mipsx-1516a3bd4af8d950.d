/root/repo/target/debug/deps/mipsx-1516a3bd4af8d950.d: src/bin/mipsx.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx-1516a3bd4af8d950.rmeta: src/bin/mipsx.rs Cargo.toml

src/bin/mipsx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
