/root/repo/target/debug/deps/branch_schemes-5f028e308645bb78.d: crates/bench/benches/branch_schemes.rs Cargo.toml

/root/repo/target/debug/deps/libbranch_schemes-5f028e308645bb78.rmeta: crates/bench/benches/branch_schemes.rs Cargo.toml

crates/bench/benches/branch_schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
