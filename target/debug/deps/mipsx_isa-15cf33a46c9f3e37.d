/root/repo/target/debug/deps/mipsx_isa-15cf33a46c9f3e37.d: crates/isa/src/lib.rs crates/isa/src/cond.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/psw.rs crates/isa/src/reg.rs crates/isa/src/sreg.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx_isa-15cf33a46c9f3e37.rmeta: crates/isa/src/lib.rs crates/isa/src/cond.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/psw.rs crates/isa/src/reg.rs crates/isa/src/sreg.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/cond.rs:
crates/isa/src/exception.rs:
crates/isa/src/instr.rs:
crates/isa/src/psw.rs:
crates/isa/src/reg.rs:
crates/isa/src/sreg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
