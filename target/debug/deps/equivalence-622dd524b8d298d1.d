/root/repo/target/debug/deps/equivalence-622dd524b8d298d1.d: crates/reorg/tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-622dd524b8d298d1.rmeta: crates/reorg/tests/equivalence.rs Cargo.toml

crates/reorg/tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
