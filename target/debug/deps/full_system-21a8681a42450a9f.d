/root/repo/target/debug/deps/full_system-21a8681a42450a9f.d: tests/full_system.rs

/root/repo/target/debug/deps/full_system-21a8681a42450a9f: tests/full_system.rs

tests/full_system.rs:
