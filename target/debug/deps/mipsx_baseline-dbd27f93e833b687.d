/root/repo/target/debug/deps/mipsx_baseline-dbd27f93e833b687.d: crates/baseline/src/lib.rs crates/baseline/src/compare.rs crates/baseline/src/ir.rs crates/baseline/src/mipsx_gen.rs crates/baseline/src/programs.rs crates/baseline/src/vax.rs

/root/repo/target/debug/deps/libmipsx_baseline-dbd27f93e833b687.rlib: crates/baseline/src/lib.rs crates/baseline/src/compare.rs crates/baseline/src/ir.rs crates/baseline/src/mipsx_gen.rs crates/baseline/src/programs.rs crates/baseline/src/vax.rs

/root/repo/target/debug/deps/libmipsx_baseline-dbd27f93e833b687.rmeta: crates/baseline/src/lib.rs crates/baseline/src/compare.rs crates/baseline/src/ir.rs crates/baseline/src/mipsx_gen.rs crates/baseline/src/programs.rs crates/baseline/src/vax.rs

crates/baseline/src/lib.rs:
crates/baseline/src/compare.rs:
crates/baseline/src/ir.rs:
crates/baseline/src/mipsx_gen.rs:
crates/baseline/src/programs.rs:
crates/baseline/src/vax.rs:
