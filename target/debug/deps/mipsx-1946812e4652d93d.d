/root/repo/target/debug/deps/mipsx-1946812e4652d93d.d: src/bin/mipsx.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx-1946812e4652d93d.rmeta: src/bin/mipsx.rs Cargo.toml

src/bin/mipsx.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
