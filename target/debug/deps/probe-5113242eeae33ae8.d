/root/repo/target/debug/deps/probe-5113242eeae33ae8.d: crates/core/tests/probe.rs Cargo.toml

/root/repo/target/debug/deps/libprobe-5113242eeae33ae8.rmeta: crates/core/tests/probe.rs Cargo.toml

crates/core/tests/probe.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
