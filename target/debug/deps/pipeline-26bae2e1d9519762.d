/root/repo/target/debug/deps/pipeline-26bae2e1d9519762.d: crates/core/tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-26bae2e1d9519762.rmeta: crates/core/tests/pipeline.rs Cargo.toml

crates/core/tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
