/root/repo/target/debug/deps/mipsx_bench-4cc591bd4dbe1a6b.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e10_btb.rs crates/bench/src/experiments/e11_ecache.rs crates/bench/src/experiments/e12_subblock.rs crates/bench/src/experiments/e1_branch_schemes.rs crates/bench/src/experiments/e2_icache_fetch.rs crates/bench/src/experiments/e3_icache_orgs.rs crates/bench/src/experiments/e4_quick_compare.rs crates/bench/src/experiments/e5_reorganizer.rs crates/bench/src/experiments/e6_fsms.rs crates/bench/src/experiments/e7_cpi.rs crates/bench/src/experiments/e8_coproc.rs crates/bench/src/experiments/e9_vax.rs crates/bench/src/fp_workload.rs

/root/repo/target/debug/deps/libmipsx_bench-4cc591bd4dbe1a6b.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e10_btb.rs crates/bench/src/experiments/e11_ecache.rs crates/bench/src/experiments/e12_subblock.rs crates/bench/src/experiments/e1_branch_schemes.rs crates/bench/src/experiments/e2_icache_fetch.rs crates/bench/src/experiments/e3_icache_orgs.rs crates/bench/src/experiments/e4_quick_compare.rs crates/bench/src/experiments/e5_reorganizer.rs crates/bench/src/experiments/e6_fsms.rs crates/bench/src/experiments/e7_cpi.rs crates/bench/src/experiments/e8_coproc.rs crates/bench/src/experiments/e9_vax.rs crates/bench/src/fp_workload.rs

/root/repo/target/debug/deps/libmipsx_bench-4cc591bd4dbe1a6b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/e10_btb.rs crates/bench/src/experiments/e11_ecache.rs crates/bench/src/experiments/e12_subblock.rs crates/bench/src/experiments/e1_branch_schemes.rs crates/bench/src/experiments/e2_icache_fetch.rs crates/bench/src/experiments/e3_icache_orgs.rs crates/bench/src/experiments/e4_quick_compare.rs crates/bench/src/experiments/e5_reorganizer.rs crates/bench/src/experiments/e6_fsms.rs crates/bench/src/experiments/e7_cpi.rs crates/bench/src/experiments/e8_coproc.rs crates/bench/src/experiments/e9_vax.rs crates/bench/src/fp_workload.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/e10_btb.rs:
crates/bench/src/experiments/e11_ecache.rs:
crates/bench/src/experiments/e12_subblock.rs:
crates/bench/src/experiments/e1_branch_schemes.rs:
crates/bench/src/experiments/e2_icache_fetch.rs:
crates/bench/src/experiments/e3_icache_orgs.rs:
crates/bench/src/experiments/e4_quick_compare.rs:
crates/bench/src/experiments/e5_reorganizer.rs:
crates/bench/src/experiments/e6_fsms.rs:
crates/bench/src/experiments/e7_cpi.rs:
crates/bench/src/experiments/e8_coproc.rs:
crates/bench/src/experiments/e9_vax.rs:
crates/bench/src/fp_workload.rs:
