/root/repo/target/debug/deps/proptest-7f37304f6c2943e7.d: crates/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-7f37304f6c2943e7.rmeta: crates/proptest/src/lib.rs Cargo.toml

crates/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
