/root/repo/target/debug/deps/sustained_mips-3791b8fa5a51e6ac.d: crates/bench/benches/sustained_mips.rs Cargo.toml

/root/repo/target/debug/deps/libsustained_mips-3791b8fa5a51e6ac.rmeta: crates/bench/benches/sustained_mips.rs Cargo.toml

crates/bench/benches/sustained_mips.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
