/root/repo/target/debug/deps/mipsx_mem-511f353a7c7186c9.d: crates/mem/src/lib.rs crates/mem/src/ecache.rs crates/mem/src/icache.rs crates/mem/src/main_memory.rs crates/mem/src/stats.rs

/root/repo/target/debug/deps/mipsx_mem-511f353a7c7186c9: crates/mem/src/lib.rs crates/mem/src/ecache.rs crates/mem/src/icache.rs crates/mem/src/main_memory.rs crates/mem/src/stats.rs

crates/mem/src/lib.rs:
crates/mem/src/ecache.rs:
crates/mem/src/icache.rs:
crates/mem/src/main_memory.rs:
crates/mem/src/stats.rs:
