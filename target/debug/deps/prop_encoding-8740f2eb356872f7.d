/root/repo/target/debug/deps/prop_encoding-8740f2eb356872f7.d: crates/isa/tests/prop_encoding.rs

/root/repo/target/debug/deps/prop_encoding-8740f2eb356872f7: crates/isa/tests/prop_encoding.rs

crates/isa/tests/prop_encoding.rs:
