/root/repo/target/debug/deps/mipsx-07f8f35469921194.d: src/lib.rs

/root/repo/target/debug/deps/libmipsx-07f8f35469921194.rlib: src/lib.rs

/root/repo/target/debug/deps/libmipsx-07f8f35469921194.rmeta: src/lib.rs

src/lib.rs:
