/root/repo/target/debug/deps/coproc_schemes-7ff5458270bbad0f.d: crates/bench/benches/coproc_schemes.rs Cargo.toml

/root/repo/target/debug/deps/libcoproc_schemes-7ff5458270bbad0f.rmeta: crates/bench/benches/coproc_schemes.rs Cargo.toml

crates/bench/benches/coproc_schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
