/root/repo/target/debug/deps/mipsx_isa-707fbc541935c102.d: crates/isa/src/lib.rs crates/isa/src/cond.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/psw.rs crates/isa/src/reg.rs crates/isa/src/sreg.rs

/root/repo/target/debug/deps/libmipsx_isa-707fbc541935c102.rlib: crates/isa/src/lib.rs crates/isa/src/cond.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/psw.rs crates/isa/src/reg.rs crates/isa/src/sreg.rs

/root/repo/target/debug/deps/libmipsx_isa-707fbc541935c102.rmeta: crates/isa/src/lib.rs crates/isa/src/cond.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/psw.rs crates/isa/src/reg.rs crates/isa/src/sreg.rs

crates/isa/src/lib.rs:
crates/isa/src/cond.rs:
crates/isa/src/exception.rs:
crates/isa/src/instr.rs:
crates/isa/src/psw.rs:
crates/isa/src/reg.rs:
crates/isa/src/sreg.rs:
