/root/repo/target/debug/deps/mipsx_core-0074f1844449fec0.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/error.rs crates/core/src/fsm.rs crates/core/src/machine.rs crates/core/src/probe.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx_core-0074f1844449fec0.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/error.rs crates/core/src/fsm.rs crates/core/src/machine.rs crates/core/src/probe.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/cpu.rs:
crates/core/src/error.rs:
crates/core/src/fsm.rs:
crates/core/src/machine.rs:
crates/core/src/probe.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
