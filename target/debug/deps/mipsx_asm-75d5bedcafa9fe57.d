/root/repo/target/debug/deps/mipsx_asm-75d5bedcafa9fe57.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/program.rs crates/asm/src/text.rs Cargo.toml

/root/repo/target/debug/deps/libmipsx_asm-75d5bedcafa9fe57.rmeta: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/program.rs crates/asm/src/text.rs Cargo.toml

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/disasm.rs:
crates/asm/src/error.rs:
crates/asm/src/program.rs:
crates/asm/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
