/root/repo/target/debug/deps/disasm_complete-c4cb84386701eb24.d: crates/workloads/tests/disasm_complete.rs

/root/repo/target/debug/deps/disasm_complete-c4cb84386701eb24: crates/workloads/tests/disasm_complete.rs

crates/workloads/tests/disasm_complete.rs:
