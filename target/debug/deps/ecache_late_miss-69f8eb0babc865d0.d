/root/repo/target/debug/deps/ecache_late_miss-69f8eb0babc865d0.d: crates/bench/benches/ecache_late_miss.rs Cargo.toml

/root/repo/target/debug/deps/libecache_late_miss-69f8eb0babc865d0.rmeta: crates/bench/benches/ecache_late_miss.rs Cargo.toml

crates/bench/benches/ecache_late_miss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
