/root/repo/target/debug/deps/mipsx-735214f3c12be829.d: src/lib.rs

/root/repo/target/debug/deps/mipsx-735214f3c12be829: src/lib.rs

src/lib.rs:
