/root/repo/target/debug/deps/kernels_run-46709e7f76f3a346.d: crates/workloads/tests/kernels_run.rs Cargo.toml

/root/repo/target/debug/deps/libkernels_run-46709e7f76f3a346.rmeta: crates/workloads/tests/kernels_run.rs Cargo.toml

crates/workloads/tests/kernels_run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
