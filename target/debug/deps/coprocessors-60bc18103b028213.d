/root/repo/target/debug/deps/coprocessors-60bc18103b028213.d: crates/core/tests/coprocessors.rs

/root/repo/target/debug/deps/coprocessors-60bc18103b028213: crates/core/tests/coprocessors.rs

crates/core/tests/coprocessors.rs:
