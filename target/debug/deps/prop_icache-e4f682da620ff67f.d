/root/repo/target/debug/deps/prop_icache-e4f682da620ff67f.d: crates/mem/tests/prop_icache.rs

/root/repo/target/debug/deps/prop_icache-e4f682da620ff67f: crates/mem/tests/prop_icache.rs

crates/mem/tests/prop_icache.rs:
