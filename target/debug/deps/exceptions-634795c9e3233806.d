/root/repo/target/debug/deps/exceptions-634795c9e3233806.d: crates/core/tests/exceptions.rs

/root/repo/target/debug/deps/exceptions-634795c9e3233806: crates/core/tests/exceptions.rs

crates/core/tests/exceptions.rs:
