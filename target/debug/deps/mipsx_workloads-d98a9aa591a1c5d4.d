/root/repo/target/debug/deps/mipsx_workloads-d98a9aa591a1c5d4.d: crates/workloads/src/lib.rs crates/workloads/src/calibration.rs crates/workloads/src/kernels.rs crates/workloads/src/synth.rs crates/workloads/src/traces.rs

/root/repo/target/debug/deps/mipsx_workloads-d98a9aa591a1c5d4: crates/workloads/src/lib.rs crates/workloads/src/calibration.rs crates/workloads/src/kernels.rs crates/workloads/src/synth.rs crates/workloads/src/traces.rs

crates/workloads/src/lib.rs:
crates/workloads/src/calibration.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/synth.rs:
crates/workloads/src/traces.rs:
