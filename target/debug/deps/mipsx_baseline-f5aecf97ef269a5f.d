/root/repo/target/debug/deps/mipsx_baseline-f5aecf97ef269a5f.d: crates/baseline/src/lib.rs crates/baseline/src/compare.rs crates/baseline/src/ir.rs crates/baseline/src/mipsx_gen.rs crates/baseline/src/programs.rs crates/baseline/src/vax.rs

/root/repo/target/debug/deps/mipsx_baseline-f5aecf97ef269a5f: crates/baseline/src/lib.rs crates/baseline/src/compare.rs crates/baseline/src/ir.rs crates/baseline/src/mipsx_gen.rs crates/baseline/src/programs.rs crates/baseline/src/vax.rs

crates/baseline/src/lib.rs:
crates/baseline/src/compare.rs:
crates/baseline/src/ir.rs:
crates/baseline/src/mipsx_gen.rs:
crates/baseline/src/programs.rs:
crates/baseline/src/vax.rs:
