/root/repo/target/debug/deps/mipsx_asm-fb1626142aa03aee.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/program.rs crates/asm/src/text.rs

/root/repo/target/debug/deps/libmipsx_asm-fb1626142aa03aee.rlib: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/program.rs crates/asm/src/text.rs

/root/repo/target/debug/deps/libmipsx_asm-fb1626142aa03aee.rmeta: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/program.rs crates/asm/src/text.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/disasm.rs:
crates/asm/src/error.rs:
crates/asm/src/program.rs:
crates/asm/src/text.rs:
