/root/repo/target/debug/deps/mipsx_coproc-591e0f8fbc6b7533.d: crates/coproc/src/lib.rs crates/coproc/src/fpu.rs crates/coproc/src/intc.rs crates/coproc/src/scheme.rs

/root/repo/target/debug/deps/mipsx_coproc-591e0f8fbc6b7533: crates/coproc/src/lib.rs crates/coproc/src/fpu.rs crates/coproc/src/intc.rs crates/coproc/src/scheme.rs

crates/coproc/src/lib.rs:
crates/coproc/src/fpu.rs:
crates/coproc/src/intc.rs:
crates/coproc/src/scheme.rs:
