/root/repo/target/debug/deps/mipsx_mem-7d31dffac90eb4eb.d: crates/mem/src/lib.rs crates/mem/src/ecache.rs crates/mem/src/icache.rs crates/mem/src/main_memory.rs crates/mem/src/stats.rs

/root/repo/target/debug/deps/libmipsx_mem-7d31dffac90eb4eb.rlib: crates/mem/src/lib.rs crates/mem/src/ecache.rs crates/mem/src/icache.rs crates/mem/src/main_memory.rs crates/mem/src/stats.rs

/root/repo/target/debug/deps/libmipsx_mem-7d31dffac90eb4eb.rmeta: crates/mem/src/lib.rs crates/mem/src/ecache.rs crates/mem/src/icache.rs crates/mem/src/main_memory.rs crates/mem/src/stats.rs

crates/mem/src/lib.rs:
crates/mem/src/ecache.rs:
crates/mem/src/icache.rs:
crates/mem/src/main_memory.rs:
crates/mem/src/stats.rs:
