/root/repo/target/debug/deps/mipsx_coproc-d441d2764b8aca24.d: crates/coproc/src/lib.rs crates/coproc/src/fpu.rs crates/coproc/src/intc.rs crates/coproc/src/scheme.rs

/root/repo/target/debug/deps/libmipsx_coproc-d441d2764b8aca24.rlib: crates/coproc/src/lib.rs crates/coproc/src/fpu.rs crates/coproc/src/intc.rs crates/coproc/src/scheme.rs

/root/repo/target/debug/deps/libmipsx_coproc-d441d2764b8aca24.rmeta: crates/coproc/src/lib.rs crates/coproc/src/fpu.rs crates/coproc/src/intc.rs crates/coproc/src/scheme.rs

crates/coproc/src/lib.rs:
crates/coproc/src/fpu.rs:
crates/coproc/src/intc.rs:
crates/coproc/src/scheme.rs:
