/root/repo/target/debug/deps/mipsx_workloads-73c4a9ac2672ccdc.d: crates/workloads/src/lib.rs crates/workloads/src/calibration.rs crates/workloads/src/kernels.rs crates/workloads/src/synth.rs crates/workloads/src/traces.rs

/root/repo/target/debug/deps/libmipsx_workloads-73c4a9ac2672ccdc.rlib: crates/workloads/src/lib.rs crates/workloads/src/calibration.rs crates/workloads/src/kernels.rs crates/workloads/src/synth.rs crates/workloads/src/traces.rs

/root/repo/target/debug/deps/libmipsx_workloads-73c4a9ac2672ccdc.rmeta: crates/workloads/src/lib.rs crates/workloads/src/calibration.rs crates/workloads/src/kernels.rs crates/workloads/src/synth.rs crates/workloads/src/traces.rs

crates/workloads/src/lib.rs:
crates/workloads/src/calibration.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/synth.rs:
crates/workloads/src/traces.rs:
