/root/repo/target/debug/deps/pipeline-c25b0e4794930ef1.d: crates/core/tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-c25b0e4794930ef1: crates/core/tests/pipeline.rs

crates/core/tests/pipeline.rs:
