/root/repo/target/debug/deps/mipsx_asm-52f61ce34535154f.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/program.rs crates/asm/src/text.rs

/root/repo/target/debug/deps/mipsx_asm-52f61ce34535154f: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/program.rs crates/asm/src/text.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/disasm.rs:
crates/asm/src/error.rs:
crates/asm/src/program.rs:
crates/asm/src/text.rs:
