/root/repo/target/debug/deps/iss_differential-d5c64b534e77ff6f.d: crates/core/tests/iss_differential.rs Cargo.toml

/root/repo/target/debug/deps/libiss_differential-d5c64b534e77ff6f.rmeta: crates/core/tests/iss_differential.rs Cargo.toml

crates/core/tests/iss_differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
