/root/repo/target/debug/deps/full_system-014c56ceb386c32f.d: tests/full_system.rs Cargo.toml

/root/repo/target/debug/deps/libfull_system-014c56ceb386c32f.rmeta: tests/full_system.rs Cargo.toml

tests/full_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
