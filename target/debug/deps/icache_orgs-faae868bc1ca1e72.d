/root/repo/target/debug/deps/icache_orgs-faae868bc1ca1e72.d: crates/bench/benches/icache_orgs.rs Cargo.toml

/root/repo/target/debug/deps/libicache_orgs-faae868bc1ca1e72.rmeta: crates/bench/benches/icache_orgs.rs Cargo.toml

crates/bench/benches/icache_orgs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
