/root/repo/target/debug/deps/criterion-d3fab73104de5bf6.d: crates/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-d3fab73104de5bf6.rmeta: crates/criterion/src/lib.rs Cargo.toml

crates/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
