/root/repo/target/debug/deps/vax_comparison-a3b54a9d19d039c2.d: crates/bench/benches/vax_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libvax_comparison-a3b54a9d19d039c2.rmeta: crates/bench/benches/vax_comparison.rs Cargo.toml

crates/bench/benches/vax_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
