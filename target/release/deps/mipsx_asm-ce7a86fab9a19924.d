/root/repo/target/release/deps/mipsx_asm-ce7a86fab9a19924.d: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/program.rs crates/asm/src/text.rs

/root/repo/target/release/deps/libmipsx_asm-ce7a86fab9a19924.rlib: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/program.rs crates/asm/src/text.rs

/root/repo/target/release/deps/libmipsx_asm-ce7a86fab9a19924.rmeta: crates/asm/src/lib.rs crates/asm/src/builder.rs crates/asm/src/disasm.rs crates/asm/src/error.rs crates/asm/src/program.rs crates/asm/src/text.rs

crates/asm/src/lib.rs:
crates/asm/src/builder.rs:
crates/asm/src/disasm.rs:
crates/asm/src/error.rs:
crates/asm/src/program.rs:
crates/asm/src/text.rs:
