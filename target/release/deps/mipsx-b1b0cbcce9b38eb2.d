/root/repo/target/release/deps/mipsx-b1b0cbcce9b38eb2.d: src/bin/mipsx.rs

/root/repo/target/release/deps/mipsx-b1b0cbcce9b38eb2: src/bin/mipsx.rs

src/bin/mipsx.rs:
