/root/repo/target/release/deps/mipsx_reorg-d3747fd3421698e3.d: crates/reorg/src/lib.rs crates/reorg/src/btb.rs crates/reorg/src/liveness.rs crates/reorg/src/quick_compare.rs crates/reorg/src/raw.rs crates/reorg/src/schedule.rs crates/reorg/src/scheme.rs

/root/repo/target/release/deps/libmipsx_reorg-d3747fd3421698e3.rlib: crates/reorg/src/lib.rs crates/reorg/src/btb.rs crates/reorg/src/liveness.rs crates/reorg/src/quick_compare.rs crates/reorg/src/raw.rs crates/reorg/src/schedule.rs crates/reorg/src/scheme.rs

/root/repo/target/release/deps/libmipsx_reorg-d3747fd3421698e3.rmeta: crates/reorg/src/lib.rs crates/reorg/src/btb.rs crates/reorg/src/liveness.rs crates/reorg/src/quick_compare.rs crates/reorg/src/raw.rs crates/reorg/src/schedule.rs crates/reorg/src/scheme.rs

crates/reorg/src/lib.rs:
crates/reorg/src/btb.rs:
crates/reorg/src/liveness.rs:
crates/reorg/src/quick_compare.rs:
crates/reorg/src/raw.rs:
crates/reorg/src/schedule.rs:
crates/reorg/src/scheme.rs:
