/root/repo/target/release/deps/probe_overhead-5bc434e093741929.d: crates/bench/benches/probe_overhead.rs

/root/repo/target/release/deps/probe_overhead-5bc434e093741929: crates/bench/benches/probe_overhead.rs

crates/bench/benches/probe_overhead.rs:
