/root/repo/target/release/deps/reproduce-abbeaa53da60f7f9.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-abbeaa53da60f7f9: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
