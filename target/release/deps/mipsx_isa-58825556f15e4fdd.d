/root/repo/target/release/deps/mipsx_isa-58825556f15e4fdd.d: crates/isa/src/lib.rs crates/isa/src/cond.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/psw.rs crates/isa/src/reg.rs crates/isa/src/sreg.rs

/root/repo/target/release/deps/libmipsx_isa-58825556f15e4fdd.rlib: crates/isa/src/lib.rs crates/isa/src/cond.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/psw.rs crates/isa/src/reg.rs crates/isa/src/sreg.rs

/root/repo/target/release/deps/libmipsx_isa-58825556f15e4fdd.rmeta: crates/isa/src/lib.rs crates/isa/src/cond.rs crates/isa/src/exception.rs crates/isa/src/instr.rs crates/isa/src/psw.rs crates/isa/src/reg.rs crates/isa/src/sreg.rs

crates/isa/src/lib.rs:
crates/isa/src/cond.rs:
crates/isa/src/exception.rs:
crates/isa/src/instr.rs:
crates/isa/src/psw.rs:
crates/isa/src/reg.rs:
crates/isa/src/sreg.rs:
