/root/repo/target/release/deps/mipsx_core-f7e3f79c1e13ccbb.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/error.rs crates/core/src/fsm.rs crates/core/src/machine.rs crates/core/src/probe.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libmipsx_core-f7e3f79c1e13ccbb.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/error.rs crates/core/src/fsm.rs crates/core/src/machine.rs crates/core/src/probe.rs crates/core/src/stats.rs

/root/repo/target/release/deps/libmipsx_core-f7e3f79c1e13ccbb.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/cpu.rs crates/core/src/error.rs crates/core/src/fsm.rs crates/core/src/machine.rs crates/core/src/probe.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/cpu.rs:
crates/core/src/error.rs:
crates/core/src/fsm.rs:
crates/core/src/machine.rs:
crates/core/src/probe.rs:
crates/core/src/stats.rs:
