/root/repo/target/release/deps/mipsx_workloads-dab2d1e37b7d79c3.d: crates/workloads/src/lib.rs crates/workloads/src/calibration.rs crates/workloads/src/kernels.rs crates/workloads/src/synth.rs crates/workloads/src/traces.rs

/root/repo/target/release/deps/libmipsx_workloads-dab2d1e37b7d79c3.rlib: crates/workloads/src/lib.rs crates/workloads/src/calibration.rs crates/workloads/src/kernels.rs crates/workloads/src/synth.rs crates/workloads/src/traces.rs

/root/repo/target/release/deps/libmipsx_workloads-dab2d1e37b7d79c3.rmeta: crates/workloads/src/lib.rs crates/workloads/src/calibration.rs crates/workloads/src/kernels.rs crates/workloads/src/synth.rs crates/workloads/src/traces.rs

crates/workloads/src/lib.rs:
crates/workloads/src/calibration.rs:
crates/workloads/src/kernels.rs:
crates/workloads/src/synth.rs:
crates/workloads/src/traces.rs:
