/root/repo/target/release/deps/mipsx-97eeb384ac5f7042.d: src/lib.rs

/root/repo/target/release/deps/libmipsx-97eeb384ac5f7042.rlib: src/lib.rs

/root/repo/target/release/deps/libmipsx-97eeb384ac5f7042.rmeta: src/lib.rs

src/lib.rs:
