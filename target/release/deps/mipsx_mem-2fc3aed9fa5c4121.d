/root/repo/target/release/deps/mipsx_mem-2fc3aed9fa5c4121.d: crates/mem/src/lib.rs crates/mem/src/ecache.rs crates/mem/src/icache.rs crates/mem/src/main_memory.rs crates/mem/src/stats.rs

/root/repo/target/release/deps/libmipsx_mem-2fc3aed9fa5c4121.rlib: crates/mem/src/lib.rs crates/mem/src/ecache.rs crates/mem/src/icache.rs crates/mem/src/main_memory.rs crates/mem/src/stats.rs

/root/repo/target/release/deps/libmipsx_mem-2fc3aed9fa5c4121.rmeta: crates/mem/src/lib.rs crates/mem/src/ecache.rs crates/mem/src/icache.rs crates/mem/src/main_memory.rs crates/mem/src/stats.rs

crates/mem/src/lib.rs:
crates/mem/src/ecache.rs:
crates/mem/src/icache.rs:
crates/mem/src/main_memory.rs:
crates/mem/src/stats.rs:
