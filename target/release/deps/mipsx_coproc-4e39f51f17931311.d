/root/repo/target/release/deps/mipsx_coproc-4e39f51f17931311.d: crates/coproc/src/lib.rs crates/coproc/src/fpu.rs crates/coproc/src/intc.rs crates/coproc/src/scheme.rs

/root/repo/target/release/deps/libmipsx_coproc-4e39f51f17931311.rlib: crates/coproc/src/lib.rs crates/coproc/src/fpu.rs crates/coproc/src/intc.rs crates/coproc/src/scheme.rs

/root/repo/target/release/deps/libmipsx_coproc-4e39f51f17931311.rmeta: crates/coproc/src/lib.rs crates/coproc/src/fpu.rs crates/coproc/src/intc.rs crates/coproc/src/scheme.rs

crates/coproc/src/lib.rs:
crates/coproc/src/fpu.rs:
crates/coproc/src/intc.rs:
crates/coproc/src/scheme.rs:
