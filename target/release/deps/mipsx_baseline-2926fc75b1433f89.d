/root/repo/target/release/deps/mipsx_baseline-2926fc75b1433f89.d: crates/baseline/src/lib.rs crates/baseline/src/compare.rs crates/baseline/src/ir.rs crates/baseline/src/mipsx_gen.rs crates/baseline/src/programs.rs crates/baseline/src/vax.rs

/root/repo/target/release/deps/libmipsx_baseline-2926fc75b1433f89.rlib: crates/baseline/src/lib.rs crates/baseline/src/compare.rs crates/baseline/src/ir.rs crates/baseline/src/mipsx_gen.rs crates/baseline/src/programs.rs crates/baseline/src/vax.rs

/root/repo/target/release/deps/libmipsx_baseline-2926fc75b1433f89.rmeta: crates/baseline/src/lib.rs crates/baseline/src/compare.rs crates/baseline/src/ir.rs crates/baseline/src/mipsx_gen.rs crates/baseline/src/programs.rs crates/baseline/src/vax.rs

crates/baseline/src/lib.rs:
crates/baseline/src/compare.rs:
crates/baseline/src/ir.rs:
crates/baseline/src/mipsx_gen.rs:
crates/baseline/src/programs.rs:
crates/baseline/src/vax.rs:
