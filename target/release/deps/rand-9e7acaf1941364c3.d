/root/repo/target/release/deps/rand-9e7acaf1941364c3.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-9e7acaf1941364c3.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-9e7acaf1941364c3.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
