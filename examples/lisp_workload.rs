//! The Lisp story: car/cdr pointer chasing fills the load delay slots with
//! no-ops the reorganizer cannot optimize away.
//!
//! Runs the hand-written `list_chase` kernel and the calibrated Lisp-like
//! synthetic workload, comparing their no-op fractions against the
//! Pascal-like workload — the paper's 15.6% vs 18.3%.
//!
//! ```sh
//! cargo run --release --example lisp_workload
//! ```

use mipsx::core::{InterlockPolicy, Machine, MachineConfig};
use mipsx::isa::Reg;
use mipsx::reorg::{BranchScheme, Reorganizer};
use mipsx::workloads::kernels;
use mipsx::workloads::synth::{generate, SynthConfig};

fn run(
    raw: &mipsx::reorg::RawProgram,
) -> Result<(Machine, mipsx::core::RunStats), Box<dyn std::error::Error>> {
    let reorg = Reorganizer::new(BranchScheme::mipsx());
    let (image, _) = reorg.reorganize(raw)?;
    let mut machine = Machine::new(MachineConfig {
        interlock: InterlockPolicy::Detect,
        ..MachineConfig::mipsx()
    });
    machine.load_program(&image);
    let stats = machine.run(200_000_000)?;
    Ok((machine, stats))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The literal car/cdr chase.
    let kernel = kernels::list_chase(32);
    let (machine, stats) = run(&kernel.raw)?;
    println!("list_chase(32): sum = {}", machine.cpu().reg(Reg::new(2)));
    println!(
        "  {} instructions, {:.1}% no-ops (load-delay slots the chains cannot fill)",
        stats.instructions,
        stats.nop_fraction() * 100.0
    );

    // 2. Calibrated class comparison.
    let mut pascal = mipsx::core::RunStats::default();
    let mut lisp = mipsx::core::RunStats::default();
    for seed in [7u64, 77, 777] {
        // The scaled configuration of experiment E7 (larger code footprint,
        // short loop visits), where the paper's fractions were calibrated.
        let mut p = SynthConfig::pascal_like(seed).with_code_scale(14, 6);
        p.trip_count = 4;
        let mut l = SynthConfig::lisp_like(seed).with_code_scale(14, 6);
        l.trip_count = 4;
        let (_, s) = run(&generate(p).raw)?;
        pascal.merge(&s);
        let (_, s) = run(&generate(l).raw)?;
        lisp.merge(&s);
    }
    println!("\nworkload-class no-op fractions:");
    println!(
        "  Pascal-like: {:.1}%   (paper: 15.6%)",
        pascal.nop_fraction() * 100.0
    );
    println!(
        "  Lisp-like:   {:.1}%   (paper: 18.3%)",
        lisp.nop_fraction() * 100.0
    );
    println!(
        "  Lisp CPI {:.3} vs Pascal CPI {:.3}",
        lisp.cpi(),
        pascal.cpi()
    );
    Ok(())
}
