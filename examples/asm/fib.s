; Iterative Fibonacci with manually scheduled branch delay slots.
; r2/r3 hold the sliding pair; the two no-squash slots after the loop
; branch do the shift, so the loop body carries zero no-ops.
        .entry main
main:   li r1, 10             ; compute fib(10) = 55 into r3
        li r2, 0              ; fib(0)
        li r3, 1              ; fib(1)
loop:   add r4, r2, r3
        addi r1, r1, -1
        bne r1, r0, loop
        add r2, r0, r3        ; delay slot 1: shift the pair down
        add r3, r0, r4        ; delay slot 2
        halt
