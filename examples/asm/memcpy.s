; Word-by-word copy loop (MIPS-X is word addressed). The source-pointer
; bump fills the load delay slot, and the destination bump rides in the
; first branch slot — the idiomatic hand schedule for this loop.
        .entry main
main:   li r1, 64             ; source base
        li r2, 128            ; destination base
        li r3, 8              ; words to copy
loop:   ld r4, 0(r1)
        addi r1, r1, 1        ; load delay slot: bump src
        st r4, 0(r2)
        addi r3, r3, -1
        bne r3, r0, loop
        addi r2, r2, 1        ; delay slot 1: bump dst
        nop                   ; delay slot 2
        halt
