; Software 32-step multiply: r3 = r1 * r2 (low word). MIPS-X has no
; multiply unit; a multiply is the MD setup followed by an unbroken
; run of 32 mstep instructions — exactly the chain the verifier's
; md-chain rule protects.
        .entry main
main:   li r1, 21             ; multiplicand
        li r2, 2              ; multiplier
        movtos md, r2         ; load the multiplier into MD
        li r3, 0              ; accumulator
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        mstep r3, r1, r3
        halt
