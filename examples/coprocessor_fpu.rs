//! The coprocessor interface: drive the FPU over the address pins.
//!
//! Demonstrates the final scheme the paper settled on — coprocessor
//! instructions ride the memory-instruction format, the FPU (the one
//! privileged coprocessor) loads and stores its registers directly with
//! `ldf`/`stf`, and data can also move through the main registers with
//! `mvtc`/`mvfc`.
//!
//! ```sh
//! cargo run --example coprocessor_fpu
//! ```

use mipsx::asm::assemble;
use mipsx::coproc::{Fpu, FpuOp, InterfaceScheme};
use mipsx::core::{Machine, MachineConfig};
use mipsx::isa::Reg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compute c = a*b + a for a few floats, using ldf/stf + cpop.
    // FPU ops are encoded in the 17-bit offset field of the coprocessor
    // instruction — "the processor does not need to know the format".
    let mul = FpuOp::Mul { rd: 1, rs: 2 }.encode();
    let add = FpuOp::Add { rd: 1, rs: 3 }.encode();
    let source = format!(
        r#"
        ; memory: a at 100, b at 101, result at 102
        start:  li   r1, 100
                ldf  f1, 0(r1)       ; f1 = a
                ldf  f2, 1(r1)       ; f2 = b
                ldf  f3, 0(r1)       ; f3 = a
                cpop c1, {mul}(r0)   ; f1 = a * b
                cpop c1, {add}(r0)   ; f1 = a*b + a
                stf  f1, 2(r1)       ; store the result
                mvfc r4, c1, 1       ; also read f1 into a main register
                nop
                halt
        "#
    );
    let program = assemble(&source)?;

    let mut machine = Machine::new(MachineConfig {
        coproc_scheme: InterfaceScheme::AddressLines,
        ..MachineConfig::mipsx()
    });
    machine.attach_coprocessor(1, Box::new(Fpu::new()));
    machine.write_word(100, 2.5f32.to_bits());
    machine.write_word(101, 4.0f32.to_bits());
    machine.load_program(&program);
    let stats = machine.run(100_000)?;

    let result = f32::from_bits(machine.read_word(102));
    println!("a*b + a = {result}  (expected 12.5)");
    println!(
        "main register copy: {}",
        f32::from_bits(machine.cpu().reg(Reg::new(4)))
    );
    println!(
        "coprocessor ops issued: {} over {} cycles",
        stats.coproc_ops, stats.cycles
    );
    let fpu = machine
        .coprocessor(1)
        .and_then(|c| c.as_any().downcast_ref::<Fpu>())
        .expect("fpu attached");
    println!("FPU executed {} operations", fpu.ops_executed());

    println!("\ninterface scheme costs (the paper's design history):");
    for scheme in InterfaceScheme::ALL {
        println!(
            "  {:34} pins +{:2}  cacheable: {}",
            scheme.to_string(),
            scheme.extra_pins(),
            scheme.cacheable()
        );
    }

    assert_eq!(result, 12.5);
    Ok(())
}
