//! Exception handling, step by step: an overflow trap enters the handler
//! at address zero, the handler reads the frozen PC chain, patches PSWold,
//! and restarts the pipeline with the three special jumps.
//!
//! ```sh
//! cargo run --example exception_handling
//! ```

use mipsx::asm::{assemble, assemble_at};
use mipsx::core::{Machine, MachineConfig};
use mipsx::isa::Reg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The exception routine, "located at address zero in system space".
    // It records the three PC-chain entries, disables the overflow trap in
    // the saved PSW so the faulting add completes on replay, and returns
    // via jpc; jpc; jpcrs — the jumps interleave with the replayed
    // instructions exactly as the pipeline timing dictates.
    let handler = assemble(
        r#"
        vector: movfrs r20, pc0      ; oldest in-flight instruction
                movfrs r21, pc1      ; the faulting instruction
                movfrs r22, pc2      ; youngest in-flight instruction
                movfrs r23, pswold   ; the interrupted PSW
                li     r24, -5       ; all ones except the overflow-enable bit
                and    r23, r23, r24
                movtos pswold, r23   ; replayed add will wrap silently
                jpc                  ; restart jump 1
                jpc                  ; restart jump 2
                jpcrs                ; restart jump 3 + PSW restore
        "#,
    )?;

    // User program at 0x400: a staged overflow.
    let user = assemble_at(
        r#"
        start:  li   r1, 65535
                sll  r1, r1, 15      ; large positive value
                add  r2, r1, r1      ; signed overflow -> trap!
                li   r3, 1234        ; execution resumes here after replay
                halt
        "#,
        0x400,
    )?;

    let mut machine = Machine::new(MachineConfig::mipsx());
    machine.load_at(0, &handler.words);
    machine.load_program(&user);
    machine.cpu_mut().psw.set_overflow_trap_enabled(true);
    let stats = machine.run(100_000)?;

    let pc = |r: u8| machine.cpu().reg(Reg::new(r)) & 0x7FFF_FFFF;
    println!("exceptions taken      : {}", stats.exceptions);
    println!(
        "PC chain at the trap  : {:#x} {:#x} {:#x}",
        pc(20),
        pc(21),
        pc(22)
    );
    println!("   (sll, faulting add, following li — MEM, ALU, RF stages)");
    println!(
        "squash FSM: {} exception events, {} instructions killed",
        machine.squash_fsm().exceptions,
        machine.squash_fsm().instructions_killed
    );
    let wrapped = machine.cpu().reg(Reg::new(2));
    println!("replayed add produced : {wrapped:#x} (wrapped, trap masked)");
    println!(
        "post-trap execution   : r3 = {}",
        machine.cpu().reg(Reg::new(3))
    );

    assert_eq!(stats.exceptions, 1);
    assert_eq!(machine.cpu().reg(Reg::new(3)), 1234);
    assert_eq!(pc(21), 0x402);
    Ok(())
}
