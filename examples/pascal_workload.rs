//! The Pascal-like workload end to end: synthesize a calibrated program,
//! run it unscheduled and reorganized, and print the paper's headline
//! statistics (no-op fraction, cycles per branch, CPI, sustained MIPS).
//!
//! ```sh
//! cargo run --release --example pascal_workload
//! ```

use mipsx::core::{InterlockPolicy, Machine, MachineConfig};
use mipsx::reorg::{BranchScheme, Reorganizer};
use mipsx::workloads::calibration;
use mipsx::workloads::synth::{generate, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let synth = generate(SynthConfig::pascal_like(2026).with_code_scale(14, 6));
    println!(
        "synthesized Pascal-like program: {} blocks, {} body instructions",
        synth.raw.len(),
        synth.raw.body_len()
    );

    let reorg = Reorganizer::new(BranchScheme::mipsx());
    let (naive, _) = reorg.lower_naive(&synth.raw)?;
    let (scheduled, report) = reorg.reorganize(&synth.raw)?;
    println!(
        "reorganizer: {} branches ({} squashing), fill ratio {:.0}%, {} load-delay nops",
        report.branches,
        report.squashing_branches,
        report.fill_ratio() * 100.0,
        report.load_nops
    );

    for (label, image) in [("unscheduled", &naive), ("reorganized", &scheduled)] {
        let mut machine = Machine::new(MachineConfig {
            interlock: InterlockPolicy::Detect,
            ..MachineConfig::mipsx()
        });
        machine.load_program(image);
        let stats = machine.run(200_000_000)?;
        println!("\n[{label}]");
        println!("  cycles            = {}", stats.cycles);
        println!("  CPI               = {:.3}", stats.cpi());
        println!("  no-op fraction    = {:.1}%", stats.nop_fraction() * 100.0);
        println!("  cycles per branch = {:.2}", stats.cycles_per_branch());
        println!(
            "  sustained MIPS    = {:.1}",
            stats.sustained_mips(calibration::CLOCK_MHZ)
        );
        println!(
            "  icache miss ratio = {:.1}%",
            machine.icache().stats().miss_ratio() * 100.0
        );
    }

    println!(
        "\npaper targets: no-ops {:.1}%, CPI {:.1}, >{} sustained MIPS, {:.2} cycles/branch",
        calibration::PASCAL_NOP_FRACTION * 100.0,
        calibration::OVERALL_CPI,
        calibration::SUSTAINED_MIPS_FLOOR,
        calibration::REORG_IMPROVED_CYCLES_PER_BRANCH,
    );
    Ok(())
}
