//! Quickstart: assemble a MIPS-X program, run it on the cycle-accurate
//! pipeline, and read the statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mipsx::asm::assemble;
use mipsx::core::{Machine, MachineConfig};
use mipsx::isa::Reg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A textbook loop: sum the integers 1..=100. Note the two explicit
    // delay slots after the branch — on MIPS-X the software sees the
    // pipeline.
    let program = assemble(
        r#"
        start:  li   r1, 100        ; counter
                li   r2, 0          ; accumulator
        loop:   add  r2, r2, r1
                addi r1, r1, -1
                bne  r1, r0, loop
                nop                 ; branch delay slot 1
                nop                 ; branch delay slot 2
                halt
        "#,
    )?;

    // The shipped machine: 2 delay slots, 512-word on-chip Icache with
    // double-word fetch-back, 64K-word Ecache with the late-miss protocol,
    // 20 MHz clock.
    let mut machine = Machine::new(MachineConfig::mipsx());
    machine.load_program(&program);
    let stats = machine.run(1_000_000)?;

    println!("sum(1..=100)      = {}", machine.cpu().reg(Reg::new(2)));
    println!("cycles            = {}", stats.cycles);
    println!("instructions      = {}", stats.instructions);
    println!("CPI               = {:.3}", stats.cpi());
    println!("no-op fraction    = {:.1}%", stats.nop_fraction() * 100.0);
    println!("cycles per branch = {:.2}", stats.cycles_per_branch());
    println!(
        "sustained MIPS    = {:.1} @ {} MHz",
        stats.sustained_mips(machine.config().clock_mhz),
        machine.config().clock_mhz
    );
    println!("icache            : {}", machine.icache().stats());
    println!("ecache            : {}", machine.ecache().stats());

    assert_eq!(machine.cpu().reg(Reg::new(2)), 5050);
    Ok(())
}
